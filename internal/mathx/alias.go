package mathx

import (
	"fmt"
	"math"
)

// AliasTable is a Walker/Vose alias table over a categorical
// distribution: Pick maps one uniform variate to a category index in
// O(1) — an integer column select plus a single threshold compare —
// replacing an O(n) cumulative scan on sampling hot paths (the service
// pick of the sampler-v2 synthesis engine and the generation-engine-v2
// Table 1 attribution both run on it). Construction is O(n); the table
// is immutable afterwards and safe for concurrent Pick calls.
type AliasTable struct {
	prob  []float64 // column acceptance threshold in [0, 1]
	alias []int32   // donor index taken when the coin exceeds prob
}

// NewAliasTable builds the table from non-negative category weights
// (they need not be normalized). At least one weight must be positive
// and all must be finite.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("mathx: alias table needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("mathx: invalid alias weight %v at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mathx: alias table weights sum to zero")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose's stable construction: split columns into those under and
	// over the uniform column mass 1/n, then repeatedly top a small
	// column up from a large one.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are full columns up to float rounding.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// Len returns the number of categories.
func (t *AliasTable) Len() int { return len(t.prob) }

// Column returns column i's acceptance threshold and donor index —
// the raw table entries, exposed so invariants (e.g. exact marginal
// preservation) can be verified from outside the package.
func (t *AliasTable) Column(i int) (prob float64, alias int) {
	return t.prob[i], int(t.alias[i])
}

// PickBatch maps each uniform variate in us to its category index,
// writing out[k] for us[k]. It is the batched, branch-light form of
// Pick for the parallel generation plane: the column select and the
// coin compare are evaluated with a conditional move instead of the
// scalar method's early return, so the loop body has no
// data-dependent branches and the table lines stay hot across the
// whole batch. out must be at least len(us) long. The mapping is
// identical to calling Pick on each element.
func (t *AliasTable) PickBatch(us []float64, out []int32) {
	fn := float64(len(t.prob))
	out = out[:len(us)]
	prob, alias := t.prob, t.alias
	// Four independent picks per iteration: no pick depends on another,
	// so the unrolled bodies overlap their table loads and compares.
	k := 0
	for ; k+4 <= len(us); k += 4 {
		out[k] = aliasPick1(prob, alias, fn, us[k])
		out[k+1] = aliasPick1(prob, alias, fn, us[k+1])
		out[k+2] = aliasPick1(prob, alias, fn, us[k+2])
		out[k+3] = aliasPick1(prob, alias, fn, us[k+3])
	}
	for ; k < len(us); k++ {
		out[k] = aliasPick1(prob, alias, fn, us[k])
	}
}

// aliasPick1 is one branch-light pick: the column select and the coin
// compare are evaluated with a conditional move instead of the scalar
// method's early return. The mapping is identical to Pick.
func aliasPick1(prob []float64, alias []int32, fn float64, u float64) int32 {
	s := u * fn
	i := int(s)
	if i >= len(prob) { // u at (or rounded to) 1
		i = len(prob) - 1
	}
	idx := int32(i)
	if s-float64(i) >= prob[i] {
		idx = alias[i]
	}
	return idx
}

// Pick maps a uniform variate u in [0, 1) to a category index: the
// integer part of u·n selects the column, the fractional part is the
// coin tossed against the column's threshold. One multiply, one
// compare, no additional randomness needed.
func (t *AliasTable) Pick(u float64) int {
	s := u * float64(len(t.prob))
	i := int(s)
	if i >= len(t.prob) { // u at (or rounded to) 1
		i = len(t.prob) - 1
	}
	if s-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
