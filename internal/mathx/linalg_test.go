package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveGaussKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x[0], 1, 1e-12) || !AlmostEqual(x[1], 3, 1e-12) {
		t.Errorf("SolveGauss = %v, want [1 3]", x)
	}
}

func TestSolveGaussNeedsPivot(t *testing.T) {
	// Leading zero forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x[0], 3, 1e-12) || !AlmostEqual(x[1], 2, 1e-12) {
		t.Errorf("SolveGauss = %v, want [3 2]", x)
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Error("expected singular matrix error")
	}
}

func TestSolveGaussDimensionMismatch(t *testing.T) {
	if _, err := SolveGauss([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestSolveGaussDoesNotModifyInput(t *testing.T) {
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	if _, err := SolveGauss(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 2 || b[0] != 5 {
		t.Error("SolveGauss modified its inputs")
	}
}

func TestSolveCholeskyMatchesGauss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		// Build SPD matrix A = MᵀM + I.
		m := make([]float64, n*n)
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		a := AtA(m, n, n)
		for i := 0; i < n; i++ {
			a[i*n+i] += 1
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xc, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatal(err)
		}
		xg, err := SolveGauss(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xc {
			if !AlmostEqual(xc[i], xg[i], 1e-8) {
				t.Fatalf("trial %d: cholesky %v vs gauss %v", trial, xc, xg)
			}
		}
	}
}

func TestSolveCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1}
	if _, err := SolveCholesky(a, []float64{1, 1}); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestMatVec(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	x := []float64{1, 0, -1}
	got := MatVec(a, x, 2, 3)
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", got)
	}
}

func TestAtAAtB(t *testing.T) {
	j := []float64{1, 2, 3, 4} // 2x2
	ata := AtA(j, 2, 2)
	want := []float64{10, 14, 14, 20}
	for i := range want {
		if ata[i] != want[i] {
			t.Fatalf("AtA = %v, want %v", ata, want)
		}
	}
	atb := AtB(j, []float64{1, 1}, 2, 2)
	if atb[0] != 4 || atb[1] != 6 {
		t.Errorf("AtB = %v, want [4 6]", atb)
	}
	// Residual solve sanity: x = (JᵀJ)⁻¹ Jᵀ b reproduces exact solution
	// for square invertible J.
	x, err := SolveGauss(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	back := MatVec(j, x, 2, 2)
	for i, v := range back {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("residual check [%d] = %v, want 1", i, v)
		}
	}
}
