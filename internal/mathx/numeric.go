package mathx

import (
	"math"
	"sort"
)

// Trapezoid integrates y over x using the trapezoidal rule. The x values
// must be ascending; lengths must match. It returns 0 for fewer than two
// points.
func Trapezoid(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	var s float64
	for i := 1; i < len(x); i++ {
		s += (x[i] - x[i-1]) * (y[i] + y[i-1]) / 2
	}
	return s
}

// CumTrapezoid returns the running trapezoidal integral of y over x; the
// result has the same length as the inputs with a leading zero.
func CumTrapezoid(x, y []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) != len(y) || len(x) < 2 {
		return out
	}
	for i := 1; i < len(x); i++ {
		out[i] = out[i-1] + (x[i]-x[i-1])*(y[i]+y[i-1])/2
	}
	return out
}

// Interp linearly interpolates the piecewise-linear function defined by
// the ascending knots xs with values ys at the query point x. Queries
// outside the knot range clamp to the boundary values.
func Interp(x float64, xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return math.NaN()
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := xs[i-1], xs[i]
	if x1 == x0 {
		return ys[i]
	}
	t := (x - x0) / (x1 - x0)
	return ys[i-1]*(1-t) + ys[i]*t
}

// LinSpace returns n evenly spaced points from lo to hi inclusive.
// n must be >= 2.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// LogSpace returns n points spaced evenly on a base-10 logarithmic scale
// from 10^loExp to 10^hiExp inclusive.
func LogSpace(loExp, hiExp float64, n int) []float64 {
	exps := LinSpace(loExp, hiExp, n)
	out := make([]float64, len(exps))
	for i, e := range exps {
		out[i] = math.Pow(10, e)
	}
	return out
}

// ArgMax returns the index of the maximum element of xs, or -1 for empty
// input. Ties resolve to the first occurrence.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of xs, or -1 for empty
// input. Ties resolve to the first occurrence.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms, or by at most tol relative to the larger magnitude.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}
