package mathx

import (
	"fmt"
	"math"
)

// SavGolFilter holds precomputed Savitzky-Golay convolution coefficients
// for a given window length, polynomial order and derivative order.
//
// The filter fits, at every sample, a polynomial of the configured order
// to the surrounding window by linear least squares, and evaluates the
// requested derivative of that polynomial at the window center. It is the
// smoothing differentiator used by the residual-peak detection step of
// the volume-model fitting algorithm (paper §5.2).
type SavGolFilter struct {
	window int       // window length, odd
	order  int       // polynomial order
	deriv  int       // derivative order
	coeffs []float64 // convolution coefficients, length window
}

// NewSavGolFilter builds a Savitzky-Golay filter with the given window
// length (must be odd and > order), polynomial order (>= deriv) and
// derivative order (0 for pure smoothing, 1 for the first derivative).
// The derivative is expressed per unit sample spacing; divide the output
// by h^deriv for samples spaced h apart.
func NewSavGolFilter(window, order, deriv int) (*SavGolFilter, error) {
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("mathx: savgol window must be odd and positive, got %d", window)
	}
	if order < 0 || order >= window {
		return nil, fmt.Errorf("mathx: savgol order %d invalid for window %d", order, window)
	}
	if deriv < 0 || deriv > order {
		return nil, fmt.Errorf("mathx: savgol derivative %d exceeds order %d", deriv, order)
	}
	half := window / 2
	np := order + 1

	// Normal equations for the Vandermonde system: (VᵀV) a = Vᵀ e_i,
	// where V[i][j] = i^j for i in [-half, half]. The convolution
	// coefficient for offset i is the deriv-th polynomial coefficient of
	// the least-squares fit to the unit impulse at i, times deriv!.
	vtv := make([]float64, np*np)
	for r := 0; r < np; r++ {
		for c := 0; c < np; c++ {
			var s float64
			for i := -half; i <= half; i++ {
				s += math.Pow(float64(i), float64(r+c))
			}
			vtv[r*np+c] = s
		}
	}
	coeffs := make([]float64, window)
	for i := -half; i <= half; i++ {
		rhs := make([]float64, np)
		for r := 0; r < np; r++ {
			rhs[r] = math.Pow(float64(i), float64(r))
		}
		sol, err := SolveGauss(vtv, rhs)
		if err != nil {
			return nil, fmt.Errorf("mathx: savgol normal equations: %w", err)
		}
		f := 1.0
		for k := 2; k <= deriv; k++ {
			f *= float64(k)
		}
		coeffs[i+half] = sol[deriv] * f
	}
	return &SavGolFilter{window: window, order: order, deriv: deriv, coeffs: coeffs}, nil
}

// Window returns the filter's window length.
func (f *SavGolFilter) Window() int { return f.window }

// Apply convolves the filter with xs and returns a slice of the same
// length. Edges are handled by mirroring the signal, which preserves
// slope continuity and avoids spurious boundary peaks.
func (f *SavGolFilter) Apply(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	half := f.window / 2
	at := func(i int) float64 {
		// Mirror: ..., x2, x1, x0, x1, x2, ... on both ends.
		for i < 0 || i >= n {
			if i < 0 {
				i = -i
			}
			if i >= n {
				i = 2*(n-1) - i
			}
			if n == 1 {
				return xs[0]
			}
		}
		return xs[i]
	}
	for i := 0; i < n; i++ {
		var s float64
		for k := -half; k <= half; k++ {
			s += f.coeffs[k+half] * at(i+k)
		}
		out[i] = s
	}
	return out
}

// SavGol is a convenience wrapper that builds a filter and applies it.
func SavGol(xs []float64, window, order, deriv int) ([]float64, error) {
	f, err := NewSavGolFilter(window, order, deriv)
	if err != nil {
		return nil, err
	}
	return f.Apply(xs), nil
}

// FiniteDiff returns the central finite-difference first derivative of xs
// assuming unit sample spacing, with one-sided differences at the edges.
// It is the raw (unsmoothed) alternative to the Savitzky-Golay derivative
// used by the smoothing ablation.
func FiniteDiff(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	out[0] = xs[1] - xs[0]
	out[n-1] = xs[n-1] - xs[n-2]
	for i := 1; i < n-1; i++ {
		out[i] = (xs[i+1] - xs[i-1]) / 2
	}
	return out
}
