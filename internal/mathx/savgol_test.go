package mathx

import (
	"math"
	"testing"
)

func TestNewSavGolFilterValidation(t *testing.T) {
	cases := []struct {
		name                 string
		window, order, deriv int
		wantErr              bool
	}{
		{"valid smoothing", 5, 2, 0, false},
		{"valid derivative", 7, 3, 1, false},
		{"even window", 4, 2, 0, true},
		{"zero window", 0, 0, 0, true},
		{"order too high", 5, 5, 0, true},
		{"deriv above order", 5, 2, 3, true},
		{"negative deriv", 5, 2, -1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSavGolFilter(tc.window, tc.order, tc.deriv)
			if (err != nil) != tc.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

// A polynomial of degree <= order must pass through the filter unchanged
// (smoothing) and have its exact derivative computed.
func TestSavGolExactOnPolynomials(t *testing.T) {
	xs := make([]float64, 41)
	dys := make([]float64, 41)
	ys := make([]float64, 41)
	for i := range xs {
		x := float64(i)
		xs[i] = x
		ys[i] = 2 + 3*x + 0.5*x*x
		dys[i] = 3 + x
	}
	smooth, err := SavGol(ys, 7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	deriv, err := SavGol(ys, 7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Interior points are exact; mirrored edges distort a quadratic's
	// derivative, so check away from boundaries.
	for i := 3; i < len(xs)-3; i++ {
		if !AlmostEqual(smooth[i], ys[i], 1e-8) {
			t.Errorf("smooth[%d] = %v, want %v", i, smooth[i], ys[i])
		}
		if !AlmostEqual(deriv[i], dys[i], 1e-8) {
			t.Errorf("deriv[%d] = %v, want %v", i, deriv[i], dys[i])
		}
	}
}

func TestSavGolSmoothsNoise(t *testing.T) {
	// A noisy constant should come out with smaller deviation.
	n := 101
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = 5 + 0.5*math.Sin(float64(i)*math.Pi) // alternating +-0.5-ish
	}
	smooth, err := SavGol(ys, 9, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Std(smooth) >= Std(ys) {
		t.Errorf("smoothing did not reduce deviation: %v >= %v", Std(smooth), Std(ys))
	}
}

func TestSavGolEmptyAndShort(t *testing.T) {
	out, err := SavGol(nil, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("len = %d, want 0", len(out))
	}
	out, err = SavGol([]float64{3}, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !AlmostEqual(out[0], 3, 1e-9) {
		t.Errorf("single sample smoothing = %v, want [3]", out)
	}
}

func TestSavGolCoefficientsSumToOne(t *testing.T) {
	// Smoothing coefficients form a weighted average.
	f, err := NewSavGolFilter(9, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Sum(f.coeffs); !AlmostEqual(got, 1, 1e-9) {
		t.Errorf("sum of smoothing coefficients = %v, want 1", got)
	}
	// First-derivative coefficients sum to zero.
	fd, err := NewSavGolFilter(9, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Sum(fd.coeffs); math.Abs(got) > 1e-9 {
		t.Errorf("sum of derivative coefficients = %v, want 0", got)
	}
}

func TestFiniteDiff(t *testing.T) {
	ys := []float64{0, 1, 4, 9, 16} // x^2 at x=0..4
	d := FiniteDiff(ys)
	want := []float64{1, 2, 4, 6, 7}
	for i := range want {
		if !AlmostEqual(d[i], want[i], 1e-12) {
			t.Errorf("FiniteDiff[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if got := FiniteDiff([]float64{5}); len(got) != 1 || got[0] != 0 {
		t.Errorf("FiniteDiff singleton = %v", got)
	}
}
