// Package mathx provides the numerical substrate shared by the traffic
// characterization and modeling pipeline: descriptive statistics,
// Savitzky-Golay smoothing, numerical integration, interpolation, small
// dense linear solvers, and binning helpers.
//
// Everything is implemented on plain float64 slices with no external
// dependencies, and is deterministic given the same inputs.
package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("mathx: empty input")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). It returns NaN if the
// weights sum to zero or the lengths differ.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) || len(xs) == 0 {
		return math.NaN()
	}
	var sw, swx float64
	for i, x := range xs {
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		return math.NaN()
	}
	return swx / sw
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 for slices of length < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance of xs (denominator n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (std/mean) of xs.
// It returns NaN when the mean is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return Std(xs) / m
}

// Skewness returns the adjusted Fisher-Pearson sample skewness of xs.
// It returns 0 for slices of length < 3 or zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// MinMax returns the minimum and maximum of xs.
// It returns (NaN, NaN) for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the numpy default).
// The input is not modified. It returns NaN for empty input or q
// outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for inputs already sorted ascending.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentiles returns the quantiles of xs at each probability in ps,
// sorting the data only once.
func Percentiles(xs []float64, ps []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = QuantileSorted(s, p)
	}
	return out
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AbsPercentageError returns |got-want|/|want| expressed as a percentage.
// When want is zero it returns 0 if got is also zero and +Inf otherwise.
func AbsPercentageError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}
