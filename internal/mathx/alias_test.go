package mathx

import (
	"math"
	"testing"
)

func TestNewAliasTableValidation(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{0.5, -0.1, 0.6}},
		{"nan", []float64{0.5, math.NaN()}},
		{"inf", []float64{0.5, math.Inf(1)}},
		{"zero-sum", []float64{0, 0, 0}},
	}
	for _, tc := range cases {
		if _, err := NewAliasTable(tc.weights); err == nil {
			t.Errorf("%s: expected construction error", tc.name)
		}
	}
}

func TestAliasTableEdgeUniforms(t *testing.T) {
	tab, err := NewAliasTable([]float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// u just below 1 must stay in range even after the *n scaling
	// rounds up.
	for _, u := range []float64{0, 0.5, math.Nextafter(1, 0)} {
		if i := tab.Pick(u); i < 0 || i >= 3 {
			t.Fatalf("Pick(%v) = %d out of range", u, i)
		}
	}
}

func TestAliasTableSingleCategory(t *testing.T) {
	tab, err := NewAliasTable([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.25, 0.999999} {
		if i := tab.Pick(u); i != 0 {
			t.Fatalf("Pick(%v) = %d, want 0", u, i)
		}
	}
}

// TestAliasTableExactMarginals checks the alias construction preserves
// the input distribution exactly: summing each column's retained and
// aliased probability mass recovers the normalized weights to float64
// round-off.
func TestAliasTableExactMarginals(t *testing.T) {
	weights := []float64{5, 1, 0.25, 3, 0, 0.75, 2}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	n := len(weights)
	var total float64
	for _, w := range weights {
		total += w
	}
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		prob, alias := tab.Column(i)
		mass[i] += prob / float64(n)
		mass[alias] += (1 - prob) / float64(n)
	}
	for i, w := range weights {
		if math.Abs(mass[i]-w/total) > 1e-12 {
			t.Errorf("category %d: alias mass %.15f, want %.15f", i, mass[i], w/total)
		}
	}
}
