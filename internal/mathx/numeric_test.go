package mathx

import (
	"math"
	"testing"
)

func TestTrapezoid(t *testing.T) {
	// Integral of x over [0, 1] is 0.5.
	x := LinSpace(0, 1, 101)
	y := make([]float64, len(x))
	copy(y, x)
	if got := Trapezoid(x, y); !AlmostEqual(got, 0.5, 1e-9) {
		t.Errorf("Trapezoid = %v, want 0.5", got)
	}
	// Integral of x^2 over [0, 1] approximates 1/3.
	for i, v := range x {
		y[i] = v * v
	}
	if got := Trapezoid(x, y); math.Abs(got-1.0/3.0) > 1e-4 {
		t.Errorf("Trapezoid x^2 = %v, want ~1/3", got)
	}
	if got := Trapezoid([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("Trapezoid single point = %v, want 0", got)
	}
}

func TestCumTrapezoid(t *testing.T) {
	x := []float64{0, 1, 2}
	y := []float64{1, 1, 1}
	got := CumTrapezoid(x, y)
	want := []float64{0, 1, 2}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("CumTrapezoid[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	tests := []struct{ x, want float64 }{
		{-1, 0},   // clamp left
		{3, 40},   // clamp right
		{0.5, 5},  // interior
		{1.5, 25}, // interior
		{1, 10},   // exact knot
	}
	for _, tc := range tests {
		if got := Interp(tc.x, xs, ys); !AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Interp(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if !math.IsNaN(Interp(1, nil, nil)) {
		t.Error("Interp on empty knots should be NaN")
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Errorf("LinSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("LinSpace n=1 = %v", got)
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(0, 3, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-9) {
			t.Errorf("LogSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, -2, 9}
	if got := ArgMax(xs); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(xs); got != 2 {
		t.Errorf("ArgMin = %d, want 2", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("ArgMax/ArgMin of empty should be -1")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Error("identical values must compare equal")
	}
	if !AlmostEqual(1e9, 1e9+1, 1e-6) {
		t.Error("relative tolerance should accept close large values")
	}
	if AlmostEqual(1, 2, 1e-6) {
		t.Error("distant values must not compare equal")
	}
}
