package mathx

import (
	"math"
	"testing"
)

func TestPCGDeterministic(t *testing.T) {
	var a, b PCG
	a.SeedStream(42, 3, 1)
	b.SeedStream(42, 3, 1)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: same seed diverged: %x vs %x", i, x, y)
		}
	}
}

func TestPCGStreamsIndependent(t *testing.T) {
	// Nearby (master, bs, day) cells must land on uncorrelated streams:
	// no pairwise collisions across the first outputs of a grid of
	// adjacent seeds.
	seen := map[uint64][3]uint64{}
	for master := uint64(0); master < 4; master++ {
		for a := uint64(0); a < 8; a++ {
			for b := uint64(0); b < 8; b++ {
				var p PCG
				p.SeedStream(master, a, b)
				// Two outputs: 128 bits of stream identity.
				key := p.Uint64() ^ p.Uint64()*0x9E3779B97F4A7C15
				if prev, dup := seen[key]; dup {
					t.Fatalf("streams (%d,%d,%d) and %v collide", master, a, b, prev)
				}
				seen[key] = [3]uint64{master, a, b}
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	var p PCG
	p.SeedStream(1, 0, 0)
	for i := 0; i < 200000; i++ {
		u := p.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

// TestUniformMoments checks the first two moments of Float64 against
// U(0,1) within 5-sigma Monte Carlo bounds at fixed seed.
func TestUniformMoments(t *testing.T) {
	var p PCG
	p.SeedStream(7, 0, 0)
	const n = 1 << 20
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		u := p.Float64()
		sum += u
		sum2 += u * u
	}
	mean := sum / n
	if tol := 5 / math.Sqrt(12*n); math.Abs(mean-0.5) > tol {
		t.Errorf("uniform mean %v, want 0.5 +/- %v", mean, tol)
	}
	variance := sum2/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.001 {
		t.Errorf("uniform variance %v, want 1/12", variance)
	}
}

// TestNormFloat64Moments checks mean, variance, kurtosis and two tail
// quantiles of the ziggurat normal sampler.
func TestNormFloat64Moments(t *testing.T) {
	var p PCG
	p.SeedStream(11, 0, 0)
	const n = 1 << 21
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = p.NormFloat64()
		sum += xs[i]
	}
	mean := sum / n
	if math.Abs(mean) > 0.005 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	var m2, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if math.Abs(m2-1) > 0.01 {
		t.Errorf("normal variance %v, want ~1", m2)
	}
	if kurt := m4 / (m2 * m2); math.Abs(kurt-3) > 0.05 {
		t.Errorf("normal kurtosis %v, want ~3", kurt)
	}
	// Tail mass beyond the ziggurat edge (|x| > znR = 3.44...) must be
	// populated: the Marsaglia tail branch runs, P(|Z|>3.4426) ~ 5.76e-4.
	tail := 0
	for _, x := range xs {
		if math.Abs(x) > znR {
			tail++
		}
	}
	frac := float64(tail) / n
	if frac < 3e-4 || frac > 9e-4 {
		t.Errorf("normal tail mass beyond %.4f is %.2e, want ~5.8e-4", znR, frac)
	}
}

// TestExpFloat64Moments checks the mean, variance and tail of the
// ziggurat exponential sampler.
func TestExpFloat64Moments(t *testing.T) {
	var p PCG
	p.SeedStream(13, 0, 0)
	const n = 1 << 21
	var sum, sum2 float64
	tail := 0
	neg := 0
	for i := 0; i < n; i++ {
		x := p.ExpFloat64()
		if x < 0 {
			neg++
		}
		if x > zeR {
			tail++
		}
		sum += x
		sum2 += x * x
	}
	if neg > 0 {
		t.Fatalf("%d negative exponential variates", neg)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
	if variance := sum2/n - mean*mean; math.Abs(variance-1) > 0.02 {
		t.Errorf("exponential variance %v, want ~1", variance)
	}
	// Tail beyond zeR: P(X > 7.697...) = exp(-zeR) ~ 4.54e-4.
	frac := float64(tail) / n
	if frac < 2e-4 || frac > 8e-4 {
		t.Errorf("exponential tail mass beyond %.4f is %.2e, want ~4.5e-4", zeR, frac)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the canonical splitmix64 stream seeded with 0
	// and 1234567 (Vigna's test vectors).
	if got := SplitMix64(0); got != 0xE220A8397B1DCDAF {
		t.Errorf("SplitMix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
	// The finalizer is a bijection: distinct inputs cannot collide.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := SplitMix64(i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
}

// TestPCGAdvance pins the LCG jump-ahead against actual stepping:
// Advance(k) must land exactly where k discarded Uint32 calls do, and
// jumps must compose additively (the A_k/C_k derivation in DESIGN.md
// "Lane-split kernels and LCG jump-ahead").
func TestPCGAdvance(t *testing.T) {
	for _, k := range []uint64{0, 1, 2, 3, 4, 7, 8, 63, 64, 1000} {
		var a, b PCG
		a.SeedStream(11, 22, 33)
		b.SeedStream(11, 22, 33)
		a.Advance(k)
		for i := uint64(0); i < k; i++ {
			b.Uint32()
		}
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Errorf("Advance(%d) diverges from %d steps: %x vs %x", k, k, x, y)
		}
	}
	// Composition: Advance(x) then Advance(y) equals Advance(x+y), for
	// deltas far beyond anything steppable.
	var a, b PCG
	a.SeedStream(5, 6, 7)
	b.SeedStream(5, 6, 7)
	const x, y = 0x123456789A, 0xFEDCBA987
	a.Advance(x)
	a.Advance(y)
	b.Advance(x + y)
	if u, v := a.Uint64(), b.Uint64(); u != v {
		t.Errorf("Advance composition broken: %x vs %x", u, v)
	}
}
