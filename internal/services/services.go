// Package services defines the catalog of mobile services used across
// the reproduction. Each Profile combines the published measurements of
// paper Table 1 (per-service shares of sessions and traffic with their
// coefficients of variation) with a ground-truth session-level
// behaviour model assembled from the per-service observations of §4.2
// and Fig. 10: a main base-10 log-normal traffic volume trend, up to
// three characteristic probability peaks, and a duration-volume power
// law v_s(d) = alpha_s * d^beta_s.
//
// The measurement dataset the paper works from is closed, so these
// profiles are what the network simulator (internal/netsim) uses as
// ground truth; the characterization and modeling pipeline must recover
// them from simulated measurements, which gives every experiment a
// built-in correctness oracle.
package services

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobiletraffic/internal/mathx"
)

// Class is the paper's macroscopic service taxonomy (§4.3): the
// clustering of normalized volume PDFs separates streaming services,
// lightweight interactive services, and a handful of outliers.
type Class int

// Service classes.
const (
	Streaming   Class = iota // audio/video streaming (cluster A)
	Interactive              // short/lightweight message exchanges (cluster B)
	Outlier                  // background sync and other atypical loads (cluster C)
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Streaming:
		return "streaming"
	case Interactive:
		return "interactive"
	case Outlier:
		return "outlier"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// VolumePeak is one characteristic probability mode of a service's
// per-session traffic volume PDF, expressed in the log10-bytes domain.
type VolumePeak struct {
	Weight float64 // mixture weight k relative to the main component's 1
	Mu     float64 // peak location, log10 bytes
	Sigma  float64 // peak width, decades
}

// Profile is the ground-truth session-level behaviour of one service.
type Profile struct {
	Name string
	// Table 1 columns.
	SessionSharePct float64 // % of all sessions
	SessionCV       float64 // coefficient of variation of the session share
	TrafficSharePct float64 // % of all traffic volume
	TrafficCV       float64 // coefficient of variation of the traffic share
	// Macroscopic class (§4.3).
	Class Class
	// Main log-normal volume trend (log10 bytes domain, Eq. 3).
	MainMu, MainSigma float64
	// Up to three characteristic residual peaks (§5.2 caps N at 3).
	Peaks []VolumePeak
	// Duration-volume power law v(d) = Alpha() * d^Beta (§5.3); Beta > 1
	// for streaming services, < 1 for interactive ones (Fig. 10).
	Beta float64
	// TypDuration is the representative session duration in seconds; it
	// anchors Alpha so that a session of typical volume 10^MainMu lasts
	// TypDuration.
	TypDuration float64
	// DurationNoise is the log10-domain jitter (decades) applied to the
	// duration implied by the power law when synthesizing sessions.
	DurationNoise float64

	// alpha and invBeta memoize the power-law terms that are pure
	// functions of the fields above; see Precompute. Zero means
	// not-yet-computed and every accessor falls back to the closed form,
	// so hand-built Profile literals keep working unchanged.
	alpha, invBeta float64
	// Natural-log-domain terms of the sampler-v2 fast path, also set by
	// Precompute: the base-10 mixture parameters scaled by ln 10 so one
	// math.Exp replaces each math.Pow(10, ·), the ln of the power-law
	// prefactor, and the mixture weight total. mixTotal == 0 marks
	// not-yet-precomputed (it is ≥ 1 afterwards).
	lnAlpha    float64  // ln Alpha
	mainMuLn   float64  // MainMu · ln 10
	mainSigLn  float64  // MainSigma · ln 10
	durNoiseLn float64  // DurationNoise · ln 10
	mixTotal   float64  // 1 + Σ peak weights
	peaksLn    []peakLn // peaks with ln-domain location and width
}

// peakLn is a VolumePeak with its parameters pre-scaled to the
// natural-log domain.
type peakLn struct {
	w, mu, sigma float64
}

// Precompute memoizes the power-law prefactor and exponent inverse so
// the per-session sampling hot path (SampleDuration → DurationFor →
// Alpha) stops re-deriving them with two math.Pow calls per session.
// The cached values are the exact same floats the closed forms produce,
// so sampling results are bit-identical. It also derives the
// natural-log-domain terms of the sampler-v2 fast path (SampleVolumeLn,
// SampleDurationLn). Call it once per profile before concurrent use; it
// mutates the receiver and is not safe to race with readers.
func (p *Profile) Precompute() {
	p.alpha = math.Pow(10, p.MainMu) / math.Pow(p.TypDuration, p.Beta)
	p.invBeta = 1 / p.Beta
	p.lnAlpha = math.Log(p.alpha)
	p.mainMuLn = p.MainMu * math.Ln10
	p.mainSigLn = p.MainSigma * math.Ln10
	p.durNoiseLn = p.DurationNoise * math.Ln10
	p.mixTotal = 1
	p.peaksLn = make([]peakLn, len(p.Peaks))
	for i, pk := range p.Peaks {
		p.mixTotal += pk.Weight
		p.peaksLn[i] = peakLn{w: pk.Weight, mu: pk.Mu * math.Ln10, sigma: pk.Sigma * math.Ln10}
	}
}

// Alpha returns the power-law prefactor anchored at the typical
// operating point: Alpha = 10^MainMu / TypDuration^Beta.
func (p *Profile) Alpha() float64 {
	if p.alpha != 0 {
		return p.alpha
	}
	return math.Pow(10, p.MainMu) / math.Pow(p.TypDuration, p.Beta)
}

// MeanVolume returns v(d) = Alpha * d^Beta in bytes for a duration in
// seconds.
func (p *Profile) MeanVolume(duration float64) float64 {
	return p.Alpha() * math.Pow(duration, p.Beta)
}

// DurationFor inverts the power law: the duration whose mean volume is
// x bytes.
func (p *Profile) DurationFor(volume float64) float64 {
	if volume <= 0 {
		return math.NaN()
	}
	ib := p.invBeta
	if ib == 0 {
		ib = 1 / p.Beta
	}
	return math.Pow(volume/p.Alpha(), ib)
}

// SampleVolume draws one per-session traffic volume in bytes from the
// ground-truth mixture: the main log-normal with weight 1 plus the
// characteristic peaks with weights Peaks[i].Weight.
func (p *Profile) SampleVolume(rng *rand.Rand) float64 {
	total := 1.0
	for _, pk := range p.Peaks {
		total += pk.Weight
	}
	u := rng.Float64() * total
	var v float64
	switch {
	case u < 1:
		v = math.Pow(10, p.MainMu+p.MainSigma*rng.NormFloat64())
	default:
		u -= 1
		for _, pk := range p.Peaks {
			if u < pk.Weight {
				v = math.Pow(10, pk.Mu+pk.Sigma*rng.NormFloat64())
				break
			}
			u -= pk.Weight
		}
		if v == 0 {
			v = math.Pow(10, p.MainMu+p.MainSigma*rng.NormFloat64())
		}
	}
	if v > MaxSessionVolume {
		return MaxSessionVolume
	}
	return v
}

// MaxSessionVolume caps per-session traffic at ~2 GB: the measured
// per-service PDFs flatten to zero around the gigabyte mark (§4.2
// observes the last knees at 200 MB for Netflix and 800 MB for Twitch).
const MaxSessionVolume = 2e9

// SampleDuration draws the session duration in seconds for a session of
// the given volume: the power-law inverse with multiplicative
// log-normal noise, clamped to [1 s, 24 h] (a session served by one BS
// cannot outlive the daily measurement aggregation window of §3.2).
func (p *Profile) SampleDuration(volume float64, rng *rand.Rand) float64 {
	d := p.DurationFor(volume) * math.Pow(10, p.DurationNoise*rng.NormFloat64())
	switch {
	case d < 1:
		return 1
	case d > 24*3600:
		return 24 * 3600
	}
	return d
}

// lnMaxSessionVolume and lnMaxDuration are the sampler-v2 clamp
// boundaries in the natural-log domain.
var (
	lnMaxSessionVolume = math.Log(MaxSessionVolume)
	lnMaxDuration      = math.Log(24 * 3600)
)

// SampleVolumeLn is the sampler-v2 counterpart of SampleVolume: it
// draws from the same ground-truth mixture but works in the
// natural-log domain, so the whole draw costs one math.Exp instead of
// a math.Pow (which internally pays both a log and an exp). It returns
// the volume in bytes together with its natural log, which
// SampleDurationLn reuses to skip the log half of the power-law
// inversion. Requires Precompute; falls back to the closed-form terms
// (without caching them) on a raw Profile literal.
func (p *Profile) SampleVolumeLn(rng *mathx.PCG) (v, lnV float64) {
	mixTotal, peaks := p.mixTotal, p.peaksLn
	muLn, sigLn := p.mainMuLn, p.mainSigLn
	if mixTotal == 0 {
		muLn, sigLn = p.MainMu*math.Ln10, p.MainSigma*math.Ln10
		mixTotal = 1
		peaks = make([]peakLn, len(p.Peaks))
		for i, pk := range p.Peaks {
			mixTotal += pk.Weight
			peaks[i] = peakLn{w: pk.Weight, mu: pk.Mu * math.Ln10, sigma: pk.Sigma * math.Ln10}
		}
	}
	if u := rng.Float64() * mixTotal; u >= 1 {
		u -= 1
		for _, pk := range peaks {
			if u < pk.w {
				muLn, sigLn = pk.mu, pk.sigma
				break
			}
			u -= pk.w
		}
		// Rounding leftovers past the last peak keep the main component,
		// mirroring SampleVolume's fallback.
	}
	lnV = muLn + sigLn*rng.NormFloat64()
	if lnV >= lnMaxSessionVolume {
		return MaxSessionVolume, lnMaxSessionVolume
	}
	return math.Exp(lnV), lnV
}

// SampleDurationLn is the sampler-v2 counterpart of SampleDuration: the
// power-law inversion with multiplicative log-normal noise evaluated as
// a single math.Exp of invBeta·(ln v − ln Alpha) + ln10·noise·Z, with
// the [1 s, 24 h] clamp applied in the log domain (the boundary cases
// skip the Exp entirely). Requires Precompute; falls back to the
// closed-form terms on a raw Profile literal.
func (p *Profile) SampleDurationLn(lnV float64, rng *mathx.PCG) float64 {
	ib, lnA, noise := p.invBeta, p.lnAlpha, p.durNoiseLn
	if p.mixTotal == 0 {
		ib = 1 / p.Beta
		lnA = math.Log(p.Alpha())
		noise = p.DurationNoise * math.Ln10
	}
	x := ib*(lnV-lnA) + noise*rng.NormFloat64()
	switch {
	case x <= 0: // d < 1 s
		return 1
	case x >= lnMaxDuration: // d > 24 h
		return 24 * 3600
	}
	return math.Exp(x)
}

// SampleVolumeLnBatch is the columnar form of SampleVolumeLn: it fills
// v and lnV for len(v) sessions of this service in one pass, drawing
// the component-selection uniforms and the log-normal deviates as two
// whole rectangles from the lane-split batch kernels (FillFloat64 then
// FillNorm) instead of interleaving two scalar draws per session. u and
// z are caller scratch of at least len(v) elements; their contents are
// overwritten. Each element realizes exactly the SampleVolumeLn
// mixture — same component selection, same ln-domain clamp — but the
// rectangular draw layout consumes the RNG stream in a different order
// than a loop of scalar calls would (the sampler-v2 stream contract
// only pins determinism and the realized distributions, not the draw
// mapping). Requires Precompute; falls back to the closed-form terms on
// a raw Profile literal.
func (p *Profile) SampleVolumeLnBatch(rng *mathx.PCG, u, z, v, lnV []float64) {
	k := len(v)
	u, z, lnV = u[:k], z[:k], lnV[:k]
	rng.FillFloat64(u)
	rng.FillNorm(z)
	mixTotal, peaks := p.mixTotal, p.peaksLn
	muLn, sigLn := p.mainMuLn, p.mainSigLn
	if mixTotal == 0 {
		muLn, sigLn = p.MainMu*math.Ln10, p.MainSigma*math.Ln10
		mixTotal = 1
		peaks = make([]peakLn, len(p.Peaks))
		for i, pk := range p.Peaks {
			mixTotal += pk.Weight
			peaks[i] = peakLn{w: pk.Weight, mu: pk.Mu * math.Ln10, sigma: pk.Sigma * math.Ln10}
		}
	}
	if len(peaks) == 0 {
		// Single-component profile: the mixture select is vacuous (the
		// coin is still drawn, as in the scalar path) and the loop is
		// branch-free up to the clamp.
		for i := 0; i < k; i++ {
			x := muLn + sigLn*z[i]
			if x >= lnMaxSessionVolume {
				v[i], lnV[i] = MaxSessionVolume, lnMaxSessionVolume
				continue
			}
			v[i], lnV[i] = math.Exp(x), x
		}
		return
	}
	for i := 0; i < k; i++ {
		m, sg := muLn, sigLn
		if uu := u[i] * mixTotal; uu >= 1 {
			uu -= 1
			for _, pk := range peaks {
				if uu < pk.w {
					m, sg = pk.mu, pk.sigma
					break
				}
				uu -= pk.w
			}
			// Rounding leftovers past the last peak keep the main
			// component, mirroring SampleVolumeLn.
		}
		x := m + sg*z[i]
		if x >= lnMaxSessionVolume {
			v[i], lnV[i] = MaxSessionVolume, lnMaxSessionVolume
			continue
		}
		v[i], lnV[i] = math.Exp(x), x
	}
}

// SampleDurationLnBatch is the columnar form of SampleDurationLn: for
// each session volume in lnV it fills the duration in seconds (d) and
// its natural log (lnD), drawing the log-normal noise deviates as one
// FillNorm rectangle into the caller scratch z (at least len(d)
// elements, overwritten). The clamp semantics match SampleDurationLn
// exactly: x <= 0 yields (1, 0) and x >= ln 86400 yields (86400,
// ln 86400), both skipping the Exp. Requires Precompute; falls back to
// the closed-form terms on a raw Profile literal.
func (p *Profile) SampleDurationLnBatch(rng *mathx.PCG, lnV, z, d, lnD []float64) {
	k := len(d)
	lnV, z, lnD = lnV[:k], z[:k], lnD[:k]
	rng.FillNorm(z)
	ib, lnA, noise := p.invBeta, p.lnAlpha, p.durNoiseLn
	if p.mixTotal == 0 {
		ib = 1 / p.Beta
		lnA = math.Log(p.Alpha())
		noise = p.DurationNoise * math.Ln10
	}
	for i := 0; i < k; i++ {
		x := ib*(lnV[i]-lnA) + noise*z[i]
		switch {
		case x <= 0: // d < 1 s
			d[i], lnD[i] = 1, 0
		case x >= lnMaxDuration: // d > 24 h
			d[i], lnD[i] = 24*3600, lnMaxDuration
		default:
			d[i], lnD[i] = math.Exp(x), x
		}
	}
}

// VolumeLogPDF evaluates the ground-truth volume density over
// u = log10(bytes): the normalized mixture of Gaussian components.
func (p *Profile) VolumeLogPDF(u float64) float64 {
	total := 1.0
	for _, pk := range p.Peaks {
		total += pk.Weight
	}
	gauss := func(mu, sigma float64) float64 {
		z := (u - mu) / sigma
		return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
	}
	s := gauss(p.MainMu, p.MainSigma)
	for _, pk := range p.Peaks {
		s += pk.Weight * gauss(pk.Mu, pk.Sigma)
	}
	return s / total
}

// catalog lists the 28 services of paper Table 1 plus three additional
// modeled services (§5.4 reports 31 total). Table 1 columns are taken
// verbatim from the paper; the behavioural parameters are assembled
// from the qualitative descriptions of §4.2 (e.g. Netflix's 40 MB mode
// and 200 MB knee, Deezer's 3.5/7.6 MB song modes, Twitch's 20 MB mode
// and 800 MB knee) and the β exponent ranges of Fig. 10.
var catalog = []Profile{
	{Name: "Facebook", SessionSharePct: 36.52, SessionCV: 1.15, TrafficSharePct: 32.53, TrafficCV: 1.68,
		Class: Interactive, MainMu: 5.3, MainSigma: 0.7,
		Peaks: []VolumePeak{{Weight: 0.06, Mu: 5.8, Sigma: 0.07}},
		Beta:  0.60, TypDuration: 120, DurationNoise: 0.25},
	{Name: "Instagram", SessionSharePct: 20.52, SessionCV: 1.27, TrafficSharePct: 31.48, TrafficCV: 2.13,
		Class: Interactive, MainMu: 5.9, MainSigma: 0.75,
		Peaks: []VolumePeak{{Weight: 0.08, Mu: 6.5, Sigma: 0.08}},
		Beta:  0.72, TypDuration: 150, DurationNoise: 0.25},
	{Name: "SnapChat", SessionSharePct: 18.33, SessionCV: 1.17, TrafficSharePct: 9.52, TrafficCV: 2.12,
		Class: Interactive, MainMu: 5.6, MainSigma: 0.7,
		Peaks: []VolumePeak{{Weight: 0.07, Mu: 6.2, Sigma: 0.07}},
		Beta:  0.65, TypDuration: 90, DurationNoise: 0.25},
	{Name: "Youtube", SessionSharePct: 4.94, SessionCV: 1.14, TrafficSharePct: 0.24, TrafficCV: 1.39,
		Class: Streaming, MainMu: 6.6, MainSigma: 1.05,
		Peaks: []VolumePeak{{Weight: 0.10, Mu: 7.5, Sigma: 0.10}, {Weight: 0.04, Mu: 8.0, Sigma: 0.10}},
		Beta:  1.30, TypDuration: 480, DurationNoise: 0.15},
	{Name: "Google Maps", SessionSharePct: 2.76, SessionCV: 1.14, TrafficSharePct: 0.10, TrafficCV: 2.82,
		Class: Interactive, MainMu: 4.7, MainSigma: 0.7,
		Beta: 0.40, TypDuration: 120, DurationNoise: 0.25},
	{Name: "Netflix", SessionSharePct: 2.40, SessionCV: 1.29, TrafficSharePct: 11.10, TrafficCV: 1.66,
		Class: Streaming, MainMu: 6.5, MainSigma: 1.1,
		Peaks: []VolumePeak{{Weight: 0.18, Mu: 7.60, Sigma: 0.08}, {Weight: 0.05, Mu: 8.30, Sigma: 0.10}},
		Beta:  1.50, TypDuration: 600, DurationNoise: 0.15},
	{Name: "Waze", SessionSharePct: 1.63, SessionCV: 1.39, TrafficSharePct: 0.62, TrafficCV: 1.75,
		Class: Interactive, MainMu: 4.8, MainSigma: 0.6,
		Beta: 0.45, TypDuration: 600, DurationNoise: 0.25},
	{Name: "Twitter", SessionSharePct: 1.46, SessionCV: 1.43, TrafficSharePct: 0.45, TrafficCV: 1.49,
		Class: Interactive, MainMu: 5.0, MainSigma: 0.65,
		Beta: 0.55, TypDuration: 90, DurationNoise: 0.25},
	{Name: "Apple iCloud", SessionSharePct: 1.04, SessionCV: 1.45, TrafficSharePct: 3.24, TrafficCV: 4.20,
		Class: Outlier, MainMu: 6.0, MainSigma: 1.2,
		Peaks: []VolumePeak{{Weight: 0.10, Mu: 7.8, Sigma: 0.12}},
		Beta:  1.05, TypDuration: 300, DurationNoise: 0.30},
	{Name: "FB Live", SessionSharePct: 1.42, SessionCV: 1.17, TrafficSharePct: 1.80, TrafficCV: 1.08,
		Class: Streaming, MainMu: 7.0, MainSigma: 1.0,
		Peaks: []VolumePeak{{Weight: 0.10, Mu: 7.7, Sigma: 0.08}},
		Beta:  1.40, TypDuration: 600, DurationNoise: 0.15},
	{Name: "Spotify", SessionSharePct: 1.12, SessionCV: 1.28, TrafficSharePct: 0.12, TrafficCV: 2.54,
		Class: Streaming, MainMu: 6.2, MainSigma: 0.95,
		Peaks: []VolumePeak{{Weight: 0.10, Mu: 6.6, Sigma: 0.07}},
		Beta:  1.10, TypDuration: 400, DurationNoise: 0.20},
	{Name: "Deezer", SessionSharePct: 1.08, SessionCV: 1.91, TrafficSharePct: 1.59, TrafficCV: 1.81,
		Class: Streaming, MainMu: 6.3, MainSigma: 0.95,
		Peaks: []VolumePeak{{Weight: 0.16, Mu: 6.54, Sigma: 0.06}, {Weight: 0.08, Mu: 6.88, Sigma: 0.06}},
		Beta:  0.95, TypDuration: 420, DurationNoise: 0.20},
	{Name: "Amazon", SessionSharePct: 0.96, SessionCV: 1.17, TrafficSharePct: 0.25, TrafficCV: 1.11,
		Class: Interactive, MainMu: 5.0, MainSigma: 0.65,
		Beta: 0.50, TypDuration: 180, DurationNoise: 0.25},
	{Name: "Twitch", SessionSharePct: 0.91, SessionCV: 1.22, TrafficSharePct: 3.67, TrafficCV: 0.96,
		Class: Streaming, MainMu: 7.3, MainSigma: 1.1,
		Peaks: []VolumePeak{{Weight: 0.10, Mu: 7.3, Sigma: 0.08}, {Weight: 0.04, Mu: 8.9, Sigma: 0.10}},
		Beta:  1.80, TypDuration: 900, DurationNoise: 0.15},
	{Name: "WhatsApp", SessionSharePct: 0.85, SessionCV: 1.27, TrafficSharePct: 0.41, TrafficCV: 2.91,
		Class: Interactive, MainMu: 4.9, MainSigma: 0.75,
		Beta: 0.35, TypDuration: 60, DurationNoise: 0.30},
	{Name: "Clothes", SessionSharePct: 0.83, SessionCV: 1.23, TrafficSharePct: 0.85, TrafficCV: 1.58,
		Class: Interactive, MainMu: 5.4, MainSigma: 0.8,
		Beta: 0.55, TypDuration: 150, DurationNoise: 0.25},
	{Name: "Gmail", SessionSharePct: 0.54, SessionCV: 1.16, TrafficSharePct: 0.02, TrafficCV: 1.17,
		Class: Interactive, MainMu: 4.5, MainSigma: 0.8,
		Beta: 0.30, TypDuration: 45, DurationNoise: 0.30},
	{Name: "LinkedIn", SessionSharePct: 0.51, SessionCV: 1.23, TrafficSharePct: 0.54, TrafficCV: 1.41,
		Class: Interactive, MainMu: 5.2, MainSigma: 0.8,
		Beta: 0.50, TypDuration: 90, DurationNoise: 0.25},
	{Name: "Telegram", SessionSharePct: 0.44, SessionCV: 1.16, TrafficSharePct: 1.08, TrafficCV: 3.27,
		Class: Outlier, MainMu: 5.3, MainSigma: 1.25,
		Peaks: []VolumePeak{{Weight: 0.05, Mu: 6.9, Sigma: 0.10}},
		Beta:  0.70, TypDuration: 60, DurationNoise: 0.30},
	{Name: "Yahoo", SessionSharePct: 0.32, SessionCV: 1.18, TrafficSharePct: 0.10, TrafficCV: 2.40,
		Class: Interactive, MainMu: 4.9, MainSigma: 0.8,
		Beta: 0.45, TypDuration: 60, DurationNoise: 0.25},
	{Name: "FB Messenger", SessionSharePct: 0.23, SessionCV: 1.25, TrafficSharePct: 0.01, TrafficCV: 1.85,
		Class: Interactive, MainMu: 4.3, MainSigma: 0.8,
		Beta: 0.25, TypDuration: 30, DurationNoise: 0.30},
	{Name: "Google Meet", SessionSharePct: 0.22, SessionCV: 1.11, TrafficSharePct: 0.14, TrafficCV: 2.16,
		Class: Streaming, MainMu: 6.5, MainSigma: 1.0,
		Peaks: []VolumePeak{{Weight: 0.08, Mu: 7.2, Sigma: 0.08}},
		Beta:  1.20, TypDuration: 900, DurationNoise: 0.15},
	{Name: "Clash of Clans", SessionSharePct: 0.18, SessionCV: 1.25, TrafficSharePct: 0.09, TrafficCV: 3.31,
		Class: Interactive, MainMu: 4.7, MainSigma: 0.6,
		Beta: 0.30, TypDuration: 300, DurationNoise: 0.25},
	{Name: "Microsoft Mail", SessionSharePct: 0.11, SessionCV: 1.31, TrafficSharePct: 0.01, TrafficCV: 4.48,
		Class: Interactive, MainMu: 4.3, MainSigma: 0.8,
		Beta: 0.20, TypDuration: 40, DurationNoise: 0.30},
	{Name: "Google Docs", SessionSharePct: 0.09, SessionCV: 1.21, TrafficSharePct: 0.02, TrafficCV: 3.58,
		Class: Interactive, MainMu: 4.6, MainSigma: 0.7,
		Beta: 0.35, TypDuration: 200, DurationNoise: 0.25},
	{Name: "Uber", SessionSharePct: 0.07, SessionCV: 1.92, TrafficSharePct: 0.01, TrafficCV: 1.55,
		Class: Interactive, MainMu: 4.5, MainSigma: 0.6,
		Beta: 0.30, TypDuration: 120, DurationNoise: 0.25},
	{Name: "Wikipedia", SessionSharePct: 0.06, SessionCV: 1.30, TrafficSharePct: 0.01, TrafficCV: 3.01,
		Class: Interactive, MainMu: 4.6, MainSigma: 0.7,
		Beta: 0.40, TypDuration: 90, DurationNoise: 0.25},
	{Name: "Pokemon GO", SessionSharePct: 0.04, SessionCV: 1.21, TrafficSharePct: 0.01, TrafficCV: 2.33,
		Class: Interactive, MainMu: 4.5, MainSigma: 0.5,
		Beta: 0.10, TypDuration: 300, DurationNoise: 0.25},
	// Three additional modeled services beyond Table 1 (§5.4 covers 31).
	{Name: "App Store", SessionSharePct: 0.12, SessionCV: 1.40, TrafficSharePct: 0.90, TrafficCV: 2.80,
		Class: Outlier, MainMu: 6.8, MainSigma: 1.2,
		Peaks: []VolumePeak{{Weight: 0.09, Mu: 7.9, Sigma: 0.10}},
		Beta:  1.00, TypDuration: 240, DurationNoise: 0.25},
	{Name: "Web Browsing", SessionSharePct: 0.25, SessionCV: 1.20, TrafficSharePct: 0.20, TrafficCV: 1.60,
		Class: Interactive, MainMu: 5.1, MainSigma: 0.9,
		Beta: 0.50, TypDuration: 120, DurationNoise: 0.25},
	{Name: "Microsoft Teams", SessionSharePct: 0.15, SessionCV: 1.18, TrafficSharePct: 0.25, TrafficCV: 2.00,
		Class: Streaming, MainMu: 6.4, MainSigma: 1.0,
		Peaks: []VolumePeak{{Weight: 0.07, Mu: 7.1, Sigma: 0.08}},
		Beta:  1.15, TypDuration: 1200, DurationNoise: 0.15},
}

// All returns the full catalog, ordered by descending session share.
// The returned slice is freshly allocated; its Profile values share no
// state with the package.
func All() []Profile {
	out := make([]Profile, len(catalog))
	copy(out, catalog)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].SessionSharePct > out[j].SessionSharePct
	})
	return out
}

// Table1 returns only the 28 services listed in paper Table 1, ordered
// by descending session share.
func Table1() []Profile {
	all := All()
	out := out28(all)
	return out
}

func out28(all []Profile) []Profile {
	extra := map[string]bool{"App Store": true, "Web Browsing": true, "Microsoft Teams": true}
	out := make([]Profile, 0, len(all)-len(extra))
	for _, p := range all {
		if !extra[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range catalog {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("services: unknown service %q", name)
}

// Names returns the service names ordered by descending session share.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}

// SessionShareProbs returns the catalog ordered by descending session
// share together with the normalized probability that a newly
// established session belongs to each service — the measurement-driven
// arrival breakdown of paper §5.1 (Table 1 shares used as assignment
// probabilities).
func SessionShareProbs() ([]Profile, []float64) {
	all := All()
	probs := make([]float64, len(all))
	var total float64
	for _, p := range all {
		total += p.SessionSharePct
	}
	for i, p := range all {
		probs[i] = p.SessionSharePct / total
	}
	return all, probs
}

// PickService draws a service index according to the probabilities
// returned by SessionShareProbs.
func PickService(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
