package services

import "mobiletraffic/internal/mathx"

// AliasTable is the Walker/Vose alias table used for the O(1) service
// pick on the sampler-v2 synthesis hot path. The implementation lives
// in internal/mathx (it also powers the generation-engine-v2 service
// and mixture-component picks of internal/core); this alias keeps the
// historical services-package name working.
type AliasTable = mathx.AliasTable

// NewAliasTable builds an alias table from non-negative category
// weights; see mathx.NewAliasTable.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	return mathx.NewAliasTable(weights)
}
