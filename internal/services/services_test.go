package services

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/mathx"
)

func TestCatalogSize(t *testing.T) {
	if got := len(All()); got != 31 {
		t.Errorf("catalog size = %d, want 31 (paper §5.4)", got)
	}
	if got := len(Table1()); got != 28 {
		t.Errorf("Table 1 services = %d, want 28", got)
	}
}

func TestCatalogOrderedByShare(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].SessionSharePct > all[i-1].SessionSharePct {
			t.Errorf("catalog not sorted at %d: %s (%.2f) after %s (%.2f)",
				i, all[i].Name, all[i].SessionSharePct, all[i-1].Name, all[i-1].SessionSharePct)
		}
	}
	if all[0].Name != "Facebook" {
		t.Errorf("top service = %s, want Facebook", all[0].Name)
	}
}

func TestTable1HeadlineValues(t *testing.T) {
	// Spot-check shares against paper Table 1.
	want := map[string][2]float64{
		"Facebook":   {36.52, 32.53},
		"Instagram":  {20.52, 31.48},
		"Netflix":    {2.40, 11.10},
		"Twitch":     {0.91, 3.67},
		"Pokemon GO": {0.04, 0.01},
	}
	for name, shares := range want {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.SessionSharePct != shares[0] || p.TrafficSharePct != shares[1] {
			t.Errorf("%s shares = (%.2f, %.2f), want (%.2f, %.2f)",
				name, p.SessionSharePct, p.TrafficSharePct, shares[0], shares[1])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("DoesNotExist"); err == nil {
		t.Error("unknown service must error")
	}
}

func TestClassAssignments(t *testing.T) {
	// The paper's dichotomy: streaming services have super-linear beta,
	// interactive ones sub-linear (Fig. 10).
	for _, p := range All() {
		switch p.Class {
		case Streaming:
			if p.Beta < 0.9 {
				t.Errorf("%s: streaming service with beta %.2f", p.Name, p.Beta)
			}
		case Interactive:
			if p.Beta >= 1 {
				t.Errorf("%s: interactive service with beta %.2f", p.Name, p.Beta)
			}
		}
		if p.Beta < 0.1 || p.Beta > 1.8 {
			t.Errorf("%s: beta %.2f outside the paper's observed [0.1, 1.8]", p.Name, p.Beta)
		}
	}
	streaming := 0
	for _, p := range All() {
		if p.Class == Streaming {
			streaming++
		}
	}
	if streaming < 5 {
		t.Errorf("only %d streaming services", streaming)
	}
}

func TestClassString(t *testing.T) {
	if Streaming.String() != "streaming" || Interactive.String() != "interactive" ||
		Outlier.String() != "outlier" {
		t.Error("Class.String mismatch")
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class string")
	}
}

func TestPeakCountCap(t *testing.T) {
	// §5.2 caps residual components at 3 per service.
	for _, p := range All() {
		if len(p.Peaks) > 3 {
			t.Errorf("%s has %d peaks, want <= 3", p.Name, len(p.Peaks))
		}
		for _, pk := range p.Peaks {
			if pk.Weight <= 0 || pk.Sigma <= 0 {
				t.Errorf("%s: invalid peak %+v", p.Name, pk)
			}
		}
	}
}

func TestAlphaAnchoring(t *testing.T) {
	for _, p := range All() {
		// v(TypDuration) must equal the typical volume 10^MainMu.
		v := p.MeanVolume(p.TypDuration)
		if math.Abs(v-math.Pow(10, p.MainMu))/math.Pow(10, p.MainMu) > 1e-9 {
			t.Errorf("%s: MeanVolume(TypDuration) = %v, want %v", p.Name, v, math.Pow(10, p.MainMu))
		}
		// DurationFor inverts MeanVolume.
		d := p.DurationFor(v)
		if math.Abs(d-p.TypDuration)/p.TypDuration > 1e-9 {
			t.Errorf("%s: DurationFor(MeanVolume) = %v, want %v", p.Name, d, p.TypDuration)
		}
	}
	p := All()[0]
	if !math.IsNaN(p.DurationFor(-1)) {
		t.Error("DurationFor of negative volume must be NaN")
	}
}

func TestNetflixGroundTruthMatchesPaperNarrative(t *testing.T) {
	p, err := ByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	// §4.2: clear mode around 40 MB (log10 ≈ 7.6), probability drop
	// after ~200 MB (log10 ≈ 8.3).
	if len(p.Peaks) != 2 {
		t.Fatalf("Netflix peaks = %d, want 2", len(p.Peaks))
	}
	if math.Abs(p.Peaks[0].Mu-7.6) > 0.01 {
		t.Errorf("Netflix first peak at 10^%.2f bytes, want ~40 MB (10^7.6)", p.Peaks[0].Mu)
	}
	if p.Beta <= 1 {
		t.Errorf("Netflix beta = %.2f, want super-linear", p.Beta)
	}
}

func TestSampleVolumeMatchesGroundTruthPDF(t *testing.T) {
	p, err := ByName("Deezer")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	const n = 200000
	logs := make([]float64, n)
	for i := range logs {
		logs[i] = math.Log10(p.SampleVolume(rng))
	}
	// The empirical log-volume mean must match the mixture mean
	// (main component has weight 1).
	total := 1.0
	mix := p.MainMu
	for _, pk := range p.Peaks {
		total += pk.Weight
		mix += pk.Weight * pk.Mu
	}
	mix /= total
	got := mathx.Mean(logs)
	if math.Abs(got-mix) > 0.02 {
		t.Errorf("sample log-volume mean = %v, want %v", got, mix)
	}
}

func TestSampleDurationRespectsPowerLaw(t *testing.T) {
	p, err := ByName("Twitch")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	vol := 20e6 // 20 MB, the Twitch mode
	const n = 50000
	logs := make([]float64, n)
	for i := range logs {
		logs[i] = math.Log10(p.SampleDuration(vol, rng))
	}
	want := math.Log10(p.DurationFor(vol))
	if math.Abs(mathx.Mean(logs)-want) > 0.02 {
		t.Errorf("mean log duration = %v, want %v", mathx.Mean(logs), want)
	}
	if math.Abs(mathx.Std(logs)-p.DurationNoise) > 0.02 {
		t.Errorf("log duration std = %v, want %v", mathx.Std(logs), p.DurationNoise)
	}
	// Durations are floored at 1 s.
	if d := p.SampleDuration(1e-9, rng); d < 1 {
		t.Errorf("duration %v below 1 s floor", d)
	}
}

func TestVolumeLogPDFIntegratesToOne(t *testing.T) {
	for _, name := range []string{"Netflix", "Facebook", "Apple iCloud"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		us := mathx.LinSpace(0, 12, 4801)
		ys := make([]float64, len(us))
		for i, u := range us {
			ys[i] = p.VolumeLogPDF(u)
		}
		if got := mathx.Trapezoid(us, ys); math.Abs(got-1) > 1e-3 {
			t.Errorf("%s: log-PDF integral = %v", name, got)
		}
	}
}

func TestSessionShareProbs(t *testing.T) {
	profiles, probs := SessionShareProbs()
	if len(profiles) != len(probs) {
		t.Fatal("length mismatch")
	}
	if math.Abs(mathx.Sum(probs)-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", mathx.Sum(probs))
	}
	// Probabilities follow the catalog order (descending share).
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1] {
			t.Errorf("probs not descending at %d", i)
		}
	}
}

func TestPickServiceDistribution(t *testing.T) {
	profiles, probs := SessionShareProbs()
	rng := rand.New(rand.NewSource(10))
	counts := make([]int, len(probs))
	const n = 500000
	for i := 0; i < n; i++ {
		counts[PickService(probs, rng)]++
	}
	// The heaviest services must match their probabilities closely.
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-probs[i]) > 0.005 {
			t.Errorf("%s: empirical share %v, want %v", profiles[i].Name, got, probs[i])
		}
	}
}

func TestNamesMatchesAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatal("length mismatch")
	}
	for i := range names {
		if names[i] != all[i].Name {
			t.Errorf("Names[%d] = %s, want %s", i, names[i], all[i].Name)
		}
	}
}
