package services

import (
	"math"
	"math/rand"
	"testing"

	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/mathx"
)

// Construction validation and exact-marginal invariants of the alias
// table itself live in internal/mathx/alias_test.go next to the
// implementation; the tests here cover the services-package use: the
// catalog share draw and the log-domain profile samplers.

// TestAliasVsLinearScanChi2 is the sampler-v2 categorical-draw
// equivalence check: the alias table fed by the PCG uniform stream and
// the historical PickService cumulative scan fed by math/rand must draw
// the catalog's session shares from the same distribution. Both streams
// are fixed-seed, so the chi-square p-values are deterministic.
func TestAliasVsLinearScanChi2(t *testing.T) {
	_, probs := SessionShareProbs()
	tab, err := NewAliasTable(probs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	aliasCounts := make([]float64, len(probs))
	scanCounts := make([]float64, len(probs))
	var pcg mathx.PCG
	pcg.SeedStream(99, 0, 0)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		aliasCounts[tab.Pick(pcg.Float64())]++
		scanCounts[PickService(probs, rng)]++
	}
	// Each sampler against the exact catalog probabilities...
	for name, counts := range map[string][]float64{"alias": aliasCounts, "scan": scanCounts} {
		stat, df, p, err := dist.Chi2GoF(counts, probs)
		if err != nil {
			t.Fatalf("%s GoF: %v", name, err)
		}
		if p < 1e-3 {
			t.Errorf("%s sampler deviates from catalog shares: chi2=%.1f df=%d p=%.2e", name, stat, df, p)
		}
	}
	// ...and against each other.
	stat, df, p, err := dist.Chi2Homogeneity(aliasCounts, scanCounts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Errorf("alias and linear-scan draws differ: chi2=%.1f df=%d p=%.2e", stat, df, p)
	}
}

// TestLnSamplersMatchPowSamplers checks the log-domain volume/duration
// samplers realize the same distributions as the historical math.Pow
// forms: matched-size samples from each pair must pass a two-sample KS
// test, and the hard clamps must land on identical boundary values.
func TestLnSamplersMatchPowSamplers(t *testing.T) {
	for _, name := range []string{"Facebook", "Netflix", "Pokemon GO"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Precompute()
		const n = 200000
		volPow := make([]float64, n)
		durPow := make([]float64, n)
		rng := rand.New(rand.NewSource(7))
		for i := range volPow {
			v := p.SampleVolume(rng)
			volPow[i] = math.Log10(v)
			durPow[i] = math.Log10(p.SampleDuration(v, rng))
		}
		volLn := make([]float64, n)
		durLn := make([]float64, n)
		var pcg mathx.PCG
		pcg.SeedStream(7, 1, 2)
		for i := range volLn {
			v, lnV := p.SampleVolumeLn(&pcg)
			volLn[i] = math.Log10(v)
			durLn[i] = math.Log10(p.SampleDurationLn(lnV, &pcg))
		}
		for mName, pair := range map[string][2][]float64{
			"volume":   {volPow, volLn},
			"duration": {durPow, durLn},
		} {
			d, pv, err := dist.KSTwoSample(pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if pv < 1e-3 {
				t.Errorf("%s %s: ln-domain sampler differs from pow sampler: D=%.4f p=%.2e", name, mName, d, pv)
			}
		}
	}
}

// TestLnSamplersClampBoundaries checks the log-domain clamps return the
// exact historical boundary constants.
func TestLnSamplersClampBoundaries(t *testing.T) {
	// A degenerate profile whose volume always exceeds the cap.
	p := Profile{Name: "huge", MainMu: 12, MainSigma: 0.01, Beta: 1, TypDuration: 1e9, DurationNoise: 0.01}
	p.Precompute()
	var pcg mathx.PCG
	pcg.SeedStream(1, 0, 0)
	for i := 0; i < 100; i++ {
		v, lnV := p.SampleVolumeLn(&pcg)
		if v != MaxSessionVolume {
			t.Fatalf("volume %v not clamped to MaxSessionVolume", v)
		}
		if lnV != math.Log(MaxSessionVolume) {
			t.Fatalf("lnV %v not clamped to ln(MaxSessionVolume)", lnV)
		}
	}
	// Tiny volumes against a slow power law force the 1 s floor; huge
	// ones against TypDuration >> 24 h force the ceiling.
	small := Profile{Name: "tiny", MainMu: 0.5, MainSigma: 0.01, Beta: 1, TypDuration: 1, DurationNoise: 0.01}
	small.Precompute()
	if d := small.SampleDurationLn(math.Log(1e-3), &pcg); d != 1 {
		t.Fatalf("duration %v not clamped to 1 s floor", d)
	}
	big := Profile{Name: "slow", MainMu: 6, MainSigma: 0.01, Beta: 0.1, TypDuration: 600, DurationNoise: 0.01}
	big.Precompute()
	if d := big.SampleDurationLn(math.Log(1e18), &pcg); d != 24*3600 {
		t.Fatalf("duration %v not clamped to 24 h ceiling", d)
	}
}

// TestSampleLnFallbackWithoutPrecompute checks the raw-literal fallback
// path: a Profile that never saw Precompute must still draw from the
// full mixture (peaks included), not just the main component.
func TestSampleLnFallbackWithoutPrecompute(t *testing.T) {
	p, err := ByName("Netflix") // two strong peaks at 7.6 and 8.3
	if err != nil {
		t.Fatal(err)
	}
	// No Precompute call: mixTotal stays zero.
	var pcg mathx.PCG
	pcg.SeedStream(3, 0, 0)
	const n = 100000
	inPeak := 0
	for i := 0; i < n; i++ {
		_, lnV := p.SampleVolumeLn(&pcg)
		u := lnV / math.Ln10
		if u > 7.3 && u < 7.9 {
			inPeak++
		}
	}
	// The 7.6 peak carries weight 0.18/1.23 ~ 15% of sessions; the main
	// lognormal alone puts ~10% in that window. Anything above 12%
	// proves the peaks are drawn.
	if frac := float64(inPeak) / n; frac < 0.12 {
		t.Errorf("fallback path ignores mixture peaks: %.3f of mass in the 7.6-decade window", frac)
	}
	if d := p.SampleDurationLn(math.Log(4e7), &pcg); d <= 1 || d >= 24*3600 {
		t.Errorf("fallback duration %v outside open interval", d)
	}
}
