package vran

import (
	"math"
	"testing"
)

func TestPSModelPower(t *testing.T) {
	ps := DefaultPS()
	if got := ps.Power(0); got != 60 {
		t.Errorf("idle power = %v, want 60", got)
	}
	if got := ps.Power(100); got != 200 {
		t.Errorf("full-load power = %v, want 200", got)
	}
	if got := ps.Power(50); got != 130 {
		t.Errorf("half-load power = %v, want 130", got)
	}
	// Overload clamps.
	if got := ps.Power(500); got != 200 {
		t.Errorf("overload power = %v, want 200", got)
	}
}

func TestPackFFD(t *testing.T) {
	ps := DefaultPS()
	// Loads 60+60+40+40: FFD packs 60/40 + 60/40 = 2 bins.
	res := Pack(ps, []float64{60, 40, 60, 40})
	if res.ActivePS != 2 {
		t.Errorf("active = %d, want 2", res.ActivePS)
	}
	// Both bins fully loaded: 2 * 200 W.
	if math.Abs(res.PowerWatts-400) > 1e-9 {
		t.Errorf("power = %v, want 400", res.PowerWatts)
	}
}

func TestPackEmptyAndZeros(t *testing.T) {
	ps := DefaultPS()
	res := Pack(ps, nil)
	if res.ActivePS != 0 || res.PowerWatts != 0 {
		t.Errorf("empty pack = %+v", res)
	}
	res = Pack(ps, []float64{0, 0, 0})
	if res.ActivePS != 0 {
		t.Errorf("all-idle pack = %+v", res)
	}
}

func TestPackClampsOversizedDU(t *testing.T) {
	ps := DefaultPS()
	res := Pack(ps, []float64{250})
	if res.ActivePS != 1 {
		t.Errorf("oversized DU bins = %d", res.ActivePS)
	}
	if math.Abs(res.PowerWatts-200) > 1e-9 {
		t.Errorf("oversized DU power = %v", res.PowerWatts)
	}
	// Negative loads treated as zero.
	res = Pack(ps, []float64{-5, 30})
	if res.ActivePS != 1 {
		t.Errorf("negative-load bins = %d", res.ActivePS)
	}
}

func TestPackMinimality(t *testing.T) {
	ps := DefaultPS()
	// Total load 150 Mbps cannot fit one server; FFD must find 2.
	res := Pack(ps, []float64{50, 50, 50})
	if res.ActivePS != 2 {
		t.Errorf("active = %d, want 2", res.ActivePS)
	}
}

func TestThroughputSeriesAddSession(t *testing.T) {
	s, err := NewThroughputSeries(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB over 4 s from t=1: 2 Mbps on slots 1..4.
	if err := s.AddSession(0, 1, 4, 1e6); err != nil {
		t.Fatal(err)
	}
	wantMbps := 1e6 / 4 * 8 / 1e6
	for ts := 1; ts < 5; ts++ {
		if math.Abs(s.Series[0][ts]-wantMbps) > 1e-9 {
			t.Errorf("slot %d = %v, want %v", ts, s.Series[0][ts], wantMbps)
		}
	}
	if s.Series[0][0] != 0 || s.Series[0][5] != 0 {
		t.Error("session leaked outside its interval")
	}
	// Fractional overlap: 1 s session starting at 7.5 splits across
	// slots 7 and 8.
	if err := s.AddSession(1, 7.5, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	full := 8.0 // Mbps of the 1 s session
	if math.Abs(s.Series[1][7]-full/2) > 1e-9 || math.Abs(s.Series[1][8]-full/2) > 1e-9 {
		t.Errorf("fractional slots = %v, %v", s.Series[1][7], s.Series[1][8])
	}
}

func TestThroughputSeriesValidation(t *testing.T) {
	if _, err := NewThroughputSeries(0, 5); err == nil {
		t.Error("zero DUs must error")
	}
	s, _ := NewThroughputSeries(1, 5)
	if err := s.AddSession(5, 0, 1, 1); err == nil {
		t.Error("DU out of range must error")
	}
	if err := s.AddSession(0, 0, 0, 1); err == nil {
		t.Error("zero duration must error")
	}
	if err := s.AddSession(0, 0, 1, 0); err == nil {
		t.Error("zero volume must error")
	}
}

func TestRun(t *testing.T) {
	s, _ := NewThroughputSeries(3, 4)
	// Slot 0: all idle. Slot 1: one DU at 40 Mbps. Slot 2: three DUs at
	// 40 Mbps each (needs 2 PSs). Slot 3: idle.
	s.Series[0][1] = 40
	s.Series[0][2] = 40
	s.Series[1][2] = 40
	s.Series[2][2] = 40
	res, err := Run(DefaultPS(), s)
	if err != nil {
		t.Fatal(err)
	}
	wantActive := []float64{0, 1, 2, 0}
	for ts, w := range wantActive {
		if res.ActivePS[ts] != w {
			t.Errorf("slot %d active = %v, want %v", ts, res.ActivePS[ts], w)
		}
	}
	if res.PowerW[0] != 0 {
		t.Errorf("idle slot power = %v", res.PowerW[0])
	}
	// Slot 1: one PS at 40% load = 60 + 0.4*140 = 116 W.
	if math.Abs(res.PowerW[1]-116) > 1e-9 {
		t.Errorf("slot 1 power = %v, want 116", res.PowerW[1])
	}
	if res.MeanActive() != 0.75 {
		t.Errorf("mean active = %v", res.MeanActive())
	}
	if res.MeanPower() <= 0 {
		t.Errorf("mean power = %v", res.MeanPower())
	}
	if _, err := Run(DefaultPS(), nil); err == nil {
		t.Error("nil series must error")
	}
}

func TestAPESeries(t *testing.T) {
	ape, err := APESeries([]float64{110, 90, 100}, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 10, 0}
	for i := range want {
		if math.Abs(ape[i]-want[i]) > 1e-9 {
			t.Errorf("ape[%d] = %v, want %v", i, ape[i], want[i])
		}
	}
	// Zero-reference slots are skipped.
	ape, err = APESeries([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(ape) != 1 || math.Abs(ape[0]-10) > 1e-9 {
		t.Errorf("zero-skipping APE = %v", ape)
	}
	if _, err := APESeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := APESeries([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero reference must error")
	}
}

func TestSummarizeAPE(t *testing.T) {
	ape := make([]float64, 100)
	for i := range ape {
		ape[i] = float64(i)
	}
	s := SummarizeAPE(ape)
	if s.Median < 48 || s.Median > 51 {
		t.Errorf("median = %v", s.Median)
	}
	if !(s.P5 <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.P95) {
		t.Errorf("summary not ordered: %+v", s)
	}
}
