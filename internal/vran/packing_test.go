package vran

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackBestFitTighterOrEqual(t *testing.T) {
	ps := DefaultPS()
	// A case where best-fit wins over plain first-fit ordering
	// considerations is hard to construct with decreasing order (FFD
	// and BFD coincide often); verify equality on a classic instance.
	loads := []float64{60, 40, 60, 40}
	ff := Pack(ps, loads)
	bf := PackBestFit(ps, loads)
	if bf.ActivePS != 2 || ff.ActivePS != 2 {
		t.Errorf("FFD=%d BFD=%d, want 2", ff.ActivePS, bf.ActivePS)
	}
}

func TestPackNextFitWeaker(t *testing.T) {
	ps := DefaultPS()
	// Next-fit (no sorting, no revisiting) wastes bins on alternating
	// loads: 60,50,60,50 -> NF uses 4, FFD uses... 60+40? loads are
	// 60/50 so FFD: 60,60,50,50 -> bins {60,50?no 110}, so {60},{60},
	// {50,50} = 3 bins. NF: {60},{50},{60},{50} = 4.
	loads := []float64{60, 50, 60, 50}
	ff := Pack(ps, loads)
	nf := PackNextFit(ps, loads)
	if ff.ActivePS != 3 {
		t.Errorf("FFD = %d, want 3", ff.ActivePS)
	}
	if nf.ActivePS != 4 {
		t.Errorf("NF = %d, want 4", nf.ActivePS)
	}
}

func TestLowerBound(t *testing.T) {
	ps := DefaultPS()
	if got := LowerBoundPS(ps, []float64{50, 50, 50}); got != 2 {
		t.Errorf("lower bound = %d, want 2", got)
	}
	if got := LowerBoundPS(ps, nil); got != 0 {
		t.Errorf("empty lower bound = %d", got)
	}
	if got := LowerBoundPS(ps, []float64{100, 100}); got != 2 {
		t.Errorf("exact-fit lower bound = %d", got)
	}
	// Power lower bound is idle*n + proportional energy.
	if got := LowerBoundPower(ps, []float64{50, 50}); got != 60+140 {
		t.Errorf("power lower bound = %v, want 200", got)
	}
	if got := LowerBoundPower(ps, nil); got != 0 {
		t.Errorf("empty power lower bound = %v", got)
	}
}

// Property: FFD never uses fewer bins than the lower bound and never
// more than the Johnson guarantee 11/9*OPT + 1 >= 11/9*LB + 1; best-fit
// obeys the same bound; next-fit is valid but possibly worse.
func TestPackingBoundsProperty(t *testing.T) {
	ps := DefaultPS()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 120 // some overloads, clamped inside
		}
		lb := LowerBoundPS(ps, loads)
		for _, h := range []Heuristic{FirstFitDecreasing, BestFitDecreasing, NextFit} {
			res := PackWith(h, ps, loads)
			if res.ActivePS < lb {
				return false
			}
			if res.PowerWatts < LowerBoundPower(ps, loads)-1e-9 {
				return false
			}
		}
		ffd := Pack(ps, loads)
		if float64(ffd.ActivePS) > 11.0/9.0*float64(lb)+1+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: total placed load is conserved by every heuristic (power is
// a linear function of load, so equal-load placements with equal bin
// counts must cost the same).
func TestPackingPowerConsistencyProperty(t *testing.T) {
	ps := DefaultPS()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		loads := make([]float64, n)
		var total float64
		for i := range loads {
			loads[i] = rng.Float64() * 90
			total += loads[i]
		}
		for _, h := range []Heuristic{FirstFitDecreasing, BestFitDecreasing, NextFit} {
			res := PackWith(h, ps, loads)
			// power = idle*bins + (max-idle)*total/capacity exactly,
			// because no bin exceeds capacity.
			want := ps.IdleWatts*float64(res.ActivePS) +
				(ps.MaxWatts-ps.IdleWatts)*total/ps.CapacityMbps
			if diff := res.PowerWatts - want; diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestHeuristicString(t *testing.T) {
	if FirstFitDecreasing.String() != "first-fit-decreasing" ||
		BestFitDecreasing.String() != "best-fit-decreasing" ||
		NextFit.String() != "next-fit" {
		t.Error("heuristic strings")
	}
}

func TestRunWith(t *testing.T) {
	s, _ := NewThroughputSeries(3, 2)
	s.Series[0][0] = 60
	s.Series[1][0] = 50
	s.Series[2][0] = 60
	for _, h := range []Heuristic{FirstFitDecreasing, BestFitDecreasing, NextFit} {
		res, err := RunWith(h, DefaultPS(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.ActivePS[0] < 2 {
			t.Errorf("%v: active = %v", h, res.ActivePS[0])
		}
		if res.ActivePS[1] != 0 {
			t.Errorf("%v: idle slot active = %v", h, res.ActivePS[1])
		}
	}
	if _, err := RunWith(NextFit, DefaultPS(), nil); err == nil {
		t.Error("nil series must error")
	}
}
