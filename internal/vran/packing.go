package vran

import (
	"math"
	"sort"
)

// Alternative packing heuristics and bounds. The paper's orchestrator
// is a bin-packing heuristic ([18], Johnson's near-optimal algorithms);
// first-fit decreasing is the default (Pack). Best-fit decreasing and
// the capacity lower bound let tests verify the heuristic's quality and
// let ablations quantify the orchestration policy's impact on energy.

// PackBestFit assigns DU loads to PSs with the best-fit-decreasing
// heuristic: each load goes to the active server it fills tightest.
func PackBestFit(ps PSModel, duLoads []float64) PackResult {
	loads := clampLoads(ps, duLoads)
	sort.Sort(sort.Reverse(sort.Float64Slice(loads)))
	var bins []float64
	for _, l := range loads {
		if l == 0 {
			continue
		}
		best, bestSlack := -1, math.Inf(1)
		for i := range bins {
			slack := ps.CapacityMbps - bins[i] - l
			if slack >= 0 && slack < bestSlack {
				best, bestSlack = i, slack
			}
		}
		if best < 0 {
			bins = append(bins, l)
		} else {
			bins[best] += l
		}
	}
	res := PackResult{ActivePS: len(bins)}
	for _, b := range bins {
		res.PowerWatts += ps.Power(b)
	}
	return res
}

// PackNextFit is the weakest common heuristic: loads go into the
// current server until it overflows, then a new one opens. It serves as
// a deliberately poor orchestration baseline for energy ablations.
func PackNextFit(ps PSModel, duLoads []float64) PackResult {
	loads := clampLoads(ps, duLoads)
	var bins []float64
	cur := -1
	for _, l := range loads {
		if l == 0 {
			continue
		}
		if cur < 0 || bins[cur]+l > ps.CapacityMbps {
			bins = append(bins, 0)
			cur = len(bins) - 1
		}
		bins[cur] += l
	}
	res := PackResult{ActivePS: len(bins)}
	for _, b := range bins {
		res.PowerWatts += ps.Power(b)
	}
	return res
}

// LowerBoundPS returns a valid minimum number of active servers for
// the given loads: the larger of the size bound ceil(total load /
// capacity) and the count of loads above half capacity (no two of
// those ever share a server). The second term is what makes Johnson's
// FFD guarantee testable against this bound: with the size bound
// alone, instances made of loads just above capacity/2 drive OPT — and
// FFD — arbitrarily far past it.
func LowerBoundPS(ps PSModel, duLoads []float64) int {
	loads := clampLoads(ps, duLoads)
	var total float64
	var big int
	for _, l := range loads {
		total += l
		if l > ps.CapacityMbps/2 {
			big++
		}
	}
	if total == 0 {
		return 0
	}
	n := int(math.Ceil(total/ps.CapacityMbps - 1e-9))
	if big > n {
		return big
	}
	return n
}

// LowerBoundPower returns the minimum possible power for the loads: the
// lower-bound server count at balanced load.
func LowerBoundPower(ps PSModel, duLoads []float64) float64 {
	n := LowerBoundPS(ps, duLoads)
	if n == 0 {
		return 0
	}
	loads := clampLoads(ps, duLoads)
	var total float64
	for _, l := range loads {
		total += l
	}
	return float64(n)*ps.IdleWatts + total/ps.CapacityMbps*(ps.MaxWatts-ps.IdleWatts)
}

func clampLoads(ps PSModel, duLoads []float64) []float64 {
	out := make([]float64, 0, len(duLoads))
	for _, l := range duLoads {
		if l < 0 {
			l = 0
		}
		if l > ps.CapacityMbps {
			l = ps.CapacityMbps
		}
		out = append(out, l)
	}
	return out
}

// Heuristic selects a packing policy for Run.
type Heuristic int

// Packing policies.
const (
	FirstFitDecreasing Heuristic = iota
	BestFitDecreasing
	NextFit
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case FirstFitDecreasing:
		return "first-fit-decreasing"
	case BestFitDecreasing:
		return "best-fit-decreasing"
	default:
		return "next-fit"
	}
}

// PackWith dispatches to the selected heuristic.
func PackWith(h Heuristic, ps PSModel, duLoads []float64) PackResult {
	switch h {
	case BestFitDecreasing:
		return PackBestFit(ps, duLoads)
	case NextFit:
		return PackNextFit(ps, duLoads)
	default:
		return Pack(ps, duLoads)
	}
}

// RunWith executes the per-slot orchestration with the chosen
// heuristic.
func RunWith(h Heuristic, ps PSModel, series *ThroughputSeries) (*RunResult, error) {
	if series == nil {
		return nil, errNilSeries
	}
	out := &RunResult{
		ActivePS: make([]float64, series.Slots),
		PowerW:   make([]float64, series.Slots),
	}
	for ts := 0; ts < series.Slots; ts++ {
		res := PackWith(h, ps, series.LoadsAt(ts))
		out.ActivePS[ts] = float64(res.ActivePS)
		out.PowerW[ts] = res.PowerWatts
	}
	return out, nil
}
