// Package vran implements the CU-DU energy consumption use case of
// paper §6.2: a virtualized RAN where Centralized Units run on physical
// servers (PS) at a Telco Cloud Site, serving Distributed Units at far
// edge sites, each aggregating a group of Radio Units. PS energy
// follows the linear load model of the paper's IBM-server reference
// (60 W idle, 200 W at the 100 Mbps full load), and a first-fit
// bin-packing heuristic re-associates DUs to PSs every one-second time
// slot to minimize active servers. The package also provides the
// absolute-percentage-error metrics of Fig. 13b.
package vran

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mobiletraffic/internal/mathx"
)

// PSModel describes one physical server class (§6.2.1).
type PSModel struct {
	// CapacityMbps is the maximum summed throughput one PS can serve.
	CapacityMbps float64
	// IdleWatts is the power drawn by an active but idle PS.
	IdleWatts float64
	// MaxWatts is the power at 100% load; consumption interpolates
	// linearly in between.
	MaxWatts float64
}

// DefaultPS returns the paper's server: 100 Mbps capacity, 60 W idle,
// 200 W at full load.
func DefaultPS() PSModel {
	return PSModel{CapacityMbps: 100, IdleWatts: 60, MaxWatts: 200}
}

// Power returns the consumption of one PS serving the given load in
// Mbps (clamped to capacity).
func (p PSModel) Power(loadMbps float64) float64 {
	if loadMbps <= 0 {
		return p.IdleWatts
	}
	frac := math.Min(loadMbps/p.CapacityMbps, 1)
	return p.IdleWatts + frac*(p.MaxWatts-p.IdleWatts)
}

// PackResult is the outcome of one time slot's orchestration.
type PackResult struct {
	ActivePS int
	// PowerWatts is the total consumption of the active servers.
	PowerWatts float64
}

// Pack assigns the per-DU loads (Mbps) to the minimum number of PSs the
// first-fit-decreasing heuristic finds, then prices the placement with
// the linear power model. DU loads above a single PS capacity are
// clamped to capacity (the DU saturates its server).
func Pack(ps PSModel, duLoads []float64) PackResult {
	loads := make([]float64, 0, len(duLoads))
	for _, l := range duLoads {
		if l < 0 {
			l = 0
		}
		if l > ps.CapacityMbps {
			l = ps.CapacityMbps
		}
		loads = append(loads, l)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(loads)))
	var bins []float64
	for _, l := range loads {
		if l == 0 {
			continue
		}
		placed := false
		for i := range bins {
			if bins[i]+l <= ps.CapacityMbps {
				bins[i] += l
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, l)
		}
	}
	res := PackResult{ActivePS: len(bins)}
	for _, b := range bins {
		res.PowerWatts += ps.Power(b)
	}
	return res
}

// ThroughputSeries holds per-DU served throughput in Mbps at one-second
// time slots: Series[du][ts].
type ThroughputSeries struct {
	DUs   int
	Slots int
	// Series[du][ts] is the aggregate throughput (Mbps) DU du serves
	// during time slot ts.
	Series [][]float64
}

// NewThroughputSeries allocates an all-zero series.
func NewThroughputSeries(dus, slots int) (*ThroughputSeries, error) {
	if dus <= 0 || slots <= 0 {
		return nil, fmt.Errorf("vran: invalid series shape %dx%d", dus, slots)
	}
	s := &ThroughputSeries{DUs: dus, Slots: slots, Series: make([][]float64, dus)}
	for i := range s.Series {
		s.Series[i] = make([]float64, slots)
	}
	return s, nil
}

// AddSession adds a session served by the DU: constant throughput
// volume/duration (bytes/s, converted to Mbps) over [start, start+dur),
// clamped to the horizon.
func (s *ThroughputSeries) AddSession(du int, start, duration, volumeBytes float64) error {
	if du < 0 || du >= s.DUs {
		return fmt.Errorf("vran: DU %d out of range [0, %d)", du, s.DUs)
	}
	if duration <= 0 || volumeBytes <= 0 {
		return fmt.Errorf("vran: session needs positive duration/volume, got %v/%v", duration, volumeBytes)
	}
	mbps := volumeBytes / duration * 8 / 1e6
	end := start + duration
	for ts := int(math.Max(start, 0)); ts < s.Slots; ts++ {
		lo := math.Max(start, float64(ts))
		hi := math.Min(end, float64(ts+1))
		if hi <= lo {
			break
		}
		s.Series[du][ts] += mbps * (hi - lo)
	}
	return nil
}

// LoadsAt returns the per-DU loads of one time slot.
func (s *ThroughputSeries) LoadsAt(ts int) []float64 {
	out := make([]float64, s.DUs)
	for du := range s.Series {
		out[du] = s.Series[du][ts]
	}
	return out
}

// RunResult is the orchestration outcome over a whole series.
type RunResult struct {
	ActivePS []float64 // per time slot
	PowerW   []float64 // per time slot
}

// MeanPower returns the time-averaged power consumption.
func (r *RunResult) MeanPower() float64 { return mathx.Mean(r.PowerW) }

// MeanActive returns the time-averaged number of active servers.
func (r *RunResult) MeanActive() float64 { return mathx.Mean(r.ActivePS) }

// Run executes the per-slot orchestration over the series.
func Run(ps PSModel, series *ThroughputSeries) (*RunResult, error) {
	if series == nil {
		return nil, errNilSeries
	}
	out := &RunResult{
		ActivePS: make([]float64, series.Slots),
		PowerW:   make([]float64, series.Slots),
	}
	for ts := 0; ts < series.Slots; ts++ {
		res := Pack(ps, series.LoadsAt(ts))
		out.ActivePS[ts] = float64(res.ActivePS)
		out.PowerW[ts] = res.PowerWatts
	}
	return out, nil
}

// errNilSeries is shared by Run and RunWith.
var errNilSeries = errors.New("vran: nil series")

// APESeries returns the per-slot absolute percentage error of got
// versus want, skipping slots where the reference is zero — the
// Fig. 13b metric distributions.
func APESeries(got, want []float64) ([]float64, error) {
	if len(got) != len(want) || len(got) == 0 {
		return nil, fmt.Errorf("vran: APE needs matching non-empty series, got %d/%d", len(got), len(want))
	}
	var out []float64
	for i := range got {
		if want[i] == 0 {
			continue
		}
		out = append(out, math.Abs(got[i]-want[i])/want[i]*100)
	}
	if len(out) == 0 {
		return nil, errors.New("vran: APE reference is identically zero")
	}
	return out, nil
}

// APESummary condenses an APE distribution: median, quartiles and
// 5th/95th percentiles, matching the Fig. 13b boxplots.
type APESummary struct {
	P5, Q1, Median, Q3, P95 float64
}

// SummarizeAPE computes the boxplot statistics of an APE series.
func SummarizeAPE(ape []float64) APESummary {
	qs := mathx.Percentiles(ape, []float64{0.05, 0.25, 0.5, 0.75, 0.95})
	return APESummary{P5: qs[0], Q1: qs[1], Median: qs[2], Q3: qs[3], P95: qs[4]}
}
