package mobiletraffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestFitFromSimulationAndGenerate(t *testing.T) {
	set, err := FitFromSimulation(SimulationConfig{NumBS: 12, Days: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Services) < 15 {
		t.Fatalf("modeled %d services", len(set.Services))
	}
	if len(set.Arrivals) != 10 {
		t.Fatalf("arrival classes = %d", len(set.Arrivals))
	}
	g, err := NewGenerator(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	sessions, err := g.Minute(9, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if s.Volume <= 0 || s.Duration < 1 || s.Throughput <= 0 {
			t.Fatalf("invalid generated session %+v", s)
		}
	}
}

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	set, err := FitFromSimulation(SimulationConfig{NumBS: 12, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModels(set, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Services) != len(set.Services) {
		t.Fatalf("round trip lost services: %d vs %d", len(back.Services), len(set.Services))
	}
	fb, err := back.ByName("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := set.ByName("Facebook")
	if fb.Volume.MainMu != orig.Volume.MainMu || fb.Duration.Beta != orig.Duration.Beta {
		t.Error("round-tripped parameters differ")
	}
	if _, err := ParseModels([]byte("nope")); err == nil {
		t.Error("malformed input must error")
	}
}

func TestServicesCatalog(t *testing.T) {
	all := Services()
	if len(all) != 31 {
		t.Fatalf("catalog = %d services", len(all))
	}
	if all[0].Name != "Facebook" {
		t.Errorf("top service = %s", all[0].Name)
	}
}

func TestFitFromObservations(t *testing.T) {
	// Synthesize sessions of two artificial services with known
	// behaviour and check the fitted models recover it.
	rng := rand.New(rand.NewSource(7))
	var obs []SessionObservation
	for i := 0; i < 4000; i++ {
		// "heavy": log-normal volume around 10^7, beta = 1.4.
		vol := math.Pow(10, 7+0.5*rng.NormFloat64())
		dur := math.Pow(vol/3000, 1/1.4) * math.Pow(10, 0.1*rng.NormFloat64())
		obs = append(obs, SessionObservation{
			Service: "heavy", BS: i % 4, Day: i % 2, Minute: i % 1440,
			Volume: vol, Duration: math.Max(dur, 1),
		})
		// "light": volume around 10^5, beta = 0.5.
		vol = math.Pow(10, 5+0.4*rng.NormFloat64())
		dur = math.Pow(vol/2000, 1/0.5) * math.Pow(10, 0.1*rng.NormFloat64())
		obs = append(obs, SessionObservation{
			Service: "light", BS: i % 4, Day: i % 2, Minute: (i * 7) % 1440,
			Volume: vol, Duration: math.Max(dur, 1),
		})
	}
	set, err := FitFromObservations(obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := set.ByName("heavy")
	if err != nil {
		t.Fatal(err)
	}
	light, err := set.ByName("light")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heavy.Volume.MainMu-7) > 0.2 {
		t.Errorf("heavy mu = %v, want ~7", heavy.Volume.MainMu)
	}
	if math.Abs(heavy.Duration.Beta-1.4) > 0.15 {
		t.Errorf("heavy beta = %v, want ~1.4", heavy.Duration.Beta)
	}
	if math.Abs(light.Duration.Beta-0.5) > 0.1 {
		t.Errorf("light beta = %v, want ~0.5", light.Duration.Beta)
	}
	// Session shares ~50/50.
	if math.Abs(heavy.SessionShare-0.5) > 0.01 {
		t.Errorf("heavy share = %v", heavy.SessionShare)
	}
}

func TestFitFromObservationsValidation(t *testing.T) {
	if _, err := FitFromObservations(nil, 0); err == nil {
		t.Error("empty observations must error")
	}
	bad := []SessionObservation{{Service: "x", Minute: -1, Volume: 1, Duration: 1}}
	if _, err := FitFromObservations(bad, 0); err == nil {
		t.Error("invalid minute must error")
	}
	bad[0] = SessionObservation{Service: "x", Minute: 0, Volume: 0, Duration: 1}
	if _, err := FitFromObservations(bad, 0); err == nil {
		t.Error("zero volume must error")
	}
}

func TestFitFromSimulationFaulty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	set, report, err := FitFromSimulationFaulty(
		SimulationConfig{NumBS: 12, Days: 3, Seed: 3},
		FaultConfig{
			OutageProb: 0.2, TruncatedDayProb: 0.1, FlowLossProb: 0.05,
			FlowDupProb: 0.02, SignalGapProb: 0.03, MisclassProb: 0.02, Seed: 9,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Services) == 0 {
		t.Fatal("no services fitted under acceptance faults")
	}
	if report == nil || report.Fitted == 0 {
		t.Fatalf("report = %+v", report)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("fault-fitted set must still validate: %v", err)
	}
	// A pristine fault config must reproduce FitFromSimulation exactly.
	clean, cleanReport, err := FitFromSimulationFaulty(SimulationConfig{NumBS: 12, Days: 3, Seed: 3}, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := FitFromSimulation(SimulationConfig{NumBS: 12, Days: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Services) != len(direct.Services) {
		t.Fatalf("zero-fault fit modeled %d services, direct fit %d", len(clean.Services), len(direct.Services))
	}
	for i := range clean.Services {
		a, b := clean.Services[i], direct.Services[i]
		if a.Name != b.Name || a.Volume.MainMu != b.Volume.MainMu || a.Duration.Beta != b.Duration.Beta {
			t.Fatalf("zero-fault fit differs from direct fit at %s", a.Name)
		}
	}
	if cleanReport.Degraded() {
		t.Errorf("pristine campaign reported degradation: %s", cleanReport.Summary())
	}
}
