package mobiletraffic

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding result from
// a simulated measurement campaign and asserts its headline shape, so
// `go test -bench=. -benchmem` both times the pipeline and re-verifies
// the reproduction. cmd/experiments prints the full rows/series.

import (
	"math/rand"
	"sync"
	"testing"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/dist"
	"mobiletraffic/internal/experiments"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.Config{NumBS: 20, Days: 7, Seed: 1})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func BenchmarkFig3ArrivalFits(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig3(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Deciles) != 10 || r.MuGrowth <= 1 {
			b.Fatalf("unexpected Fig. 3 shape: %+v", r)
		}
	}
}

func BenchmarkFig4ServiceRanking(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig4(env)
		if err != nil {
			b.Fatal(err)
		}
		if r.R2 < 0.85 || r.Top20Percent < 0.78 {
			b.Fatalf("exponential law degraded: R2=%v top20=%v", r.R2, r.Top20Percent)
		}
	}
}

func BenchmarkFig5ServicePDFs(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig5(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Services) != 6 {
			b.Fatalf("services = %d", len(r.Services))
		}
	}
}

func BenchmarkFig6Clustering(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig6(env)
		if err != nil {
			b.Fatal(err)
		}
		if r.StreamingPairAgreement < 0.6 {
			b.Fatalf("dichotomy lost: agreement %v", r.StreamingPairAgreement)
		}
	}
}

func BenchmarkFig7FacebookContrast(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig7(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Services) != 2 {
			b.Fatalf("services = %d", len(r.Services))
		}
	}
}

func BenchmarkFig8Invariance(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig8(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.EMD) == 0 || len(r.SED) == 0 {
			b.Fatal("empty invariance result")
		}
	}
}

func BenchmarkFig9MixtureDecomposition(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig9(env, "Netflix")
		if err != nil {
			b.Fatal(err)
		}
		if r.FinalEMD >= r.MainOnlyEMD {
			b.Fatalf("mixture did not improve: %v >= %v", r.FinalEMD, r.MainOnlyEMD)
		}
	}
}

func BenchmarkFig10PowerLawExponents(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig10(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) < 20 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

func BenchmarkFig11ModelQuality(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpQuality(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) < 20 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

func BenchmarkTable1Shares(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 31 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

func BenchmarkTable2Slicing(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpTable2(env, experiments.SlicingConfig{Antennas: 4, Days: 2, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		model := r.Strategies[0]
		if model.Name != "session-level models" || model.MeanSatisfied < 0.9 {
			b.Fatalf("unexpected Table 2 shape: %+v", model)
		}
	}
}

func BenchmarkFig12SliceTimeline(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig12(env, experiments.SlicingConfig{Antennas: 1, Days: 2, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		if r.Satisfied < 0.85 {
			b.Fatalf("slice satisfaction %v", r.Satisfied)
		}
	}
}

func BenchmarkFig13bVRANErrors(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig13(env, experiments.VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Strategies) != 4 {
			b.Fatalf("strategies = %d", len(r.Strategies))
		}
	}
}

func BenchmarkFig13cPowerSeries(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFig13(env, experiments.VRANConfig{ESs: 4, RUsPerES: 5, Hours: 1, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.PowerSeries["measurement"]) == 0 || len(r.PowerSeries["bm_c"]) == 0 {
			b.Fatal("missing power series")
		}
	}
}

func BenchmarkAblationPeakCap(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpAblationPeakCap(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpAblationSmoothing(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDurationFamily(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpAblationDurationFamily(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationArrivalFit(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpAblationArrivalFit(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the pipeline's hot paths --------------------

func BenchmarkSimulateBSDay(b *testing.B) {
	b.ReportAllocs()
	env := benchEnvironment(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		if err := env.Sim.GenerateDay(0, i, func(netsim.Session) { n++ }); err != nil {
			b.Fatal(err)
		}
	}
	_ = n
}

func BenchmarkVolumeModelFit(b *testing.B) {
	b.ReportAllocs()
	env := benchEnvironment(b)
	svc := 0
	h, _, err := env.Coll.AggregateVolume(probe.ForService(svc))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitVolumeModel(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratorMinute(b *testing.B) {
	b.ReportAllocs()
	env := benchEnvironment(b)
	gen, err := core.NewGenerator(env.Models, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]core.GenSession, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if buf, err = gen.MinuteAppend(buf, 9, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratorMinuteV1(b *testing.B) {
	b.ReportAllocs()
	env := benchEnvironment(b)
	gen, err := core.NewGeneratorEngine(env.Models, 1, core.GenV1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Minute(9, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMD(b *testing.B) {
	b.ReportAllocs()
	edges := mathx.LinSpace(2, 10.5, 171)
	x, _ := dist.NewHist(edges)
	y, _ := dist.NewHist(edges)
	rng := rand.New(rand.NewSource(1))
	for i := range x.P {
		x.P[i] = rng.Float64()
		y.P[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.EMD(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAppLayer(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpAppLayer(env, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) < 2 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

func BenchmarkExtensionStability(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpStability(env)
		if err != nil {
			b.Fatal(err)
		}
		if r.Comparison.MedianDeltaBeta > 0.1 {
			b.Fatalf("day-range drift too large: %v", r.Comparison.MedianDeltaBeta)
		}
	}
}

func BenchmarkExtensionFidelity(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFidelity(env, []string{"Netflix", "Facebook"}, 5000)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.KSVolume > 0.15 {
				b.Fatalf("%s volume fidelity degraded: %v", row.Name, row.KSVolume)
			}
		}
	}
}

func BenchmarkExtensionDiurnal(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpDiurnal(env)
		if err != nil {
			b.Fatal(err)
		}
		if r.DayNightAll < 3 {
			b.Fatalf("circadian ratio degraded: %v", r.DayNightAll)
		}
	}
}

func BenchmarkExtensionDrift(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpDrift(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Comparison.OnlyInB) == 0 {
			b.Fatal("new service not detected")
		}
	}
}

// BenchmarkExtensionChaos exercises the fault-injection sweep at the
// acceptance intensities (20% BS-day outage, 10% truncated days, 5%
// flow loss, 2% duplication, 3% signaling gaps, 2% misclassification)
// and asserts the graceful pipeline recovers the seeded models: a
// non-empty ModelSet at every level and median |dBeta| within the same
// 0.1 tolerance the stability extension holds day-split fits to.
func BenchmarkExtensionChaos(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpChaos(env, experiments.ChaosConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Modeled == 0 {
				b.Fatalf("intensity %v returned an empty ModelSet", row.Intensity)
			}
		}
		if drift := r.WorstBetaDrift(); drift > 0.1 {
			b.Fatalf("beta drift under faults too large: %v", drift)
		}
	}
}
