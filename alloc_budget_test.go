package mobiletraffic

// Allocation-budget regression guard for the zero-materialization fold
// plane (ISSUE 9). PR 8's parallel campaign materialized every DayBlock
// of the Table 2 slicing study before folding it into the demand
// traces, inflating the experiment's transient heap from ~13 MB to
// ~372 MB per run. The fold rewiring must keep the footprint at the
// materialization-free level; this test fails if it regresses past 2x
// the PR-7 baseline, long before the benchmark dashboards would notice.

import (
	"runtime"
	"testing"

	"mobiletraffic/internal/experiments"
)

// table2AllocBudget is 2x the PR-7 Table2Slicing transient heap
// (13,292,336 B/op), the ceiling ISSUE 9 sets for the fold path.
const table2AllocBudget = 2 * 13292336

func TestTable2SlicingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second slicing study")
	}
	env, err := experiments.NewEnv(experiments.Config{NumBS: 20, Days: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.SlicingConfig{Antennas: 4, Days: 2, Seed: 3}
	// Warm run: fitting caches, demand-trace growth, env-side lazy state.
	if _, err := experiments.ExpTable2(env, cfg); err != nil {
		t.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := experiments.ExpTable2(env, cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	got := m1.TotalAlloc - m0.TotalAlloc
	if got > table2AllocBudget {
		t.Errorf("ExpTable2 allocated %d B transient, budget %d B (2x PR-7 level): campaign blocks are being materialized again",
			got, table2AllocBudget)
	}
	t.Logf("ExpTable2 transient heap: %d B (budget %d B)", got, table2AllocBudget)
}
