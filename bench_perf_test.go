package mobiletraffic

// Micro-benchmarks of the measurement-to-model hot path: the
// end-to-end campaign (NewEnv), per-session folding into the
// collector (Observe) and the Eq. (2) aggregation scan
// (AggregateVolume). BENCH_pr3.json records their trajectory.

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/experiments"
	"mobiletraffic/internal/mathx"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/trace"
)

// BenchmarkNewEnv times the whole campaign-to-model pipeline at the
// default configuration (NumBS=40, Days=7): simulate, collect, merge,
// fit volumes/durations/arrivals.
func BenchmarkNewEnv(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(experiments.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(env.Models.Services) == 0 {
			b.Fatal("no services modeled")
		}
	}
}

// BenchmarkCollectorObserve times folding one session into an
// already-touched statistics cell — the per-session cost of the whole
// measurement plane, which a dense store keeps allocation-free.
func BenchmarkCollectorObserve(b *testing.B) {
	coll, err := probe.NewCollector(4)
	if err != nil {
		b.Fatal(err)
	}
	s := netsim.Session{Service: 1, BS: 2, Day: 0, Minute: 600, Volume: 3e6, Duration: 40}
	if err := coll.Observe(s); err != nil { // touch the cell once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coll.Observe(s); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColumnsSim builds the default-topology simulator and one
// sampled (BS, day) column set for the columnar micro-benches: the
// busiest base station of the 40-BS default topology, pre-sized to the
// campaign bound so the benched loop never re-allocates.
func benchColumnsSim(b *testing.B) (*netsim.Simulator, *netsim.DayColumns) {
	b.Helper()
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{Days: 7, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cols := &netsim.DayColumns{SkipStart: true}
	cols.Resize(sim.MaxDaySessions())
	cols.Resize(0)
	return sim, cols
}

// busiestBS returns the topology index with the highest peak arrival
// rate, so the columnar micro-benches run on the heaviest day loop.
func busiestBS(sim *netsim.Simulator) int {
	best := 0
	for i, bs := range sim.Topo.BSs {
		if bs.PeakRate > sim.Topo.BSs[best].PeakRate {
			best = i
		}
	}
	return best
}

// BenchmarkSamplerDayColumns times synthesizing one (BS, day) of the
// busiest base station straight into the columnar scratch — arrival
// counts, batched service picks, grouped volume/duration kernels and
// the mobility gate, with zero per-session materialization.
func BenchmarkSamplerDayColumns(b *testing.B) {
	sim, cols := benchColumnsSim(b)
	bs := busiestBS(sim)
	if err := sim.SampleDayColumns(bs, 0, cols); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.SampleDayColumns(bs, i%7, cols); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cols.N()), "sessions/op")
}

// BenchmarkCollectorObserveColumns times folding one sampled (BS, day)
// column set into the collector — the per-day cost of the columnar
// probe ingest (grouped segment walk, threshold binning, bulk session
// counts), steady-state after the cells exist.
func BenchmarkCollectorObserveColumns(b *testing.B) {
	sim, cols := benchColumnsSim(b)
	bs := busiestBS(sim)
	if err := sim.SampleDayColumns(bs, 0, cols); err != nil {
		b.Fatal(err)
	}
	coll, err := probe.NewCollectorSized(len(sim.Services), len(sim.Topo.BSs), 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := coll.ObserveColumns(bs, 0, cols); err != nil { // touch the cells once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coll.ObserveColumns(bs, 0, cols); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cols.N()), "sessions/op")
}

// BenchmarkCampaignResume times the resume path of the fault-tolerant
// sharded runner: every shard loads from its checkpoint (codec decode +
// CRC), the partials fold in shard order, and the models refit — the
// cost of restarting an interrupted nationwide campaign, with zero
// re-simulation.
func BenchmarkCampaignResume(b *testing.B) {
	dir := b.TempDir()
	cfg := experiments.Config{NumBS: 20, Days: 3, Seed: 1}
	opts := experiments.CampaignOptions{Shards: 4, CheckpointDir: dir}
	if _, _, err := experiments.NewEnvSharded(context.Background(), cfg, opts); err != nil {
		b.Fatal(err)
	}
	opts.Resume = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, report, err := experiments.NewEnvSharded(context.Background(), cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if report.Resumed != 4 || len(env.Models.Services) == 0 {
			b.Fatalf("resume did not cover the campaign: %s", report.Summary())
		}
	}
}

// traceBenchRecords builds a decimal-quantized 1M-session stream — the
// interchange population the CSV surface produces (%.3f/%.0f values,
// nearly sorted establishment times) that the MTTR columnar encodings
// target.
var traceBenchRecords = sync.OnceValue(func() []trace.Record {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(7))
	svcs := []string{"Netflix", "Twitch", "Waze", "Google Meet", "Pokemon GO", "Spotify"}
	q := func(v float64) float64 { return math.Round(v*1000) / 1000 }
	out := make([]trace.Record, n)
	tm := 0.0
	for i := range out {
		tm += rng.Float64() * 0.12
		vol := math.Round(100 + math.Exp(rng.NormFloat64()*2+12))
		dur := q(0.5 + math.Exp(rng.NormFloat64()+3))
		out[i] = trace.Record{
			TimeS:      q(tm),
			Service:    svcs[rng.Intn(len(svcs))],
			Bytes:      vol,
			DurationS:  dur,
			Throughput: q(vol / dur),
		}
	}
	return out
})

// countingDiscard counts bytes so the benchmark can report the encoded
// trace size without holding it.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// benchmarkTraceWrite times encoding the 1M-record stream in one trace
// format, reporting per-record time and the encoded size.
func benchmarkTraceWrite(b *testing.B, format trace.Format) {
	recs := traceBenchRecords()
	b.ReportAllocs()
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		cw := &countingDiscard{}
		w, err := trace.NewWriter(cw, format)
		if err != nil {
			b.Fatal(err)
		}
		for j := range recs {
			if err := w.Write(recs[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		size = cw.n
	}
	b.ReportMetric(float64(size)/float64(len(recs)), "bytes/record")
}

// BenchmarkTraceWriteCSV is the interchange baseline MTTR is judged
// against (BENCH_pr7.json records the ratio).
func BenchmarkTraceWriteCSV(b *testing.B) { benchmarkTraceWrite(b, trace.CSV) }

// BenchmarkTraceWriteBin times the MTTR columnar binary writer on the
// same 1M-record stream: the acceptance bar is ≥3× fewer bytes and
// ≥2× less wall time than CSV.
func BenchmarkTraceWriteBin(b *testing.B) { benchmarkTraceWrite(b, trace.Bin) }

// benchmarkGenerateCampaign times a 10-BS x 7-day campaign (one BS per
// fitted load decile) on the parallel generation plane at the given
// worker count, reporting sessions/op. The output is bit-identical at
// every worker count, so the workers=1 / workers=4 pair measures pure
// scheduling overhead vs scaling.
func benchmarkGenerateCampaign(b *testing.B, workers int) {
	env := benchEnvironment(b)
	gen, err := core.NewGenerator(env.Models, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.CampaignSpec{Arrivals: env.Arrivals, Days: 7, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	var sessions int
	for i := 0; i < b.N; i++ {
		blocks, err := gen.GenerateCampaign(spec)
		if err != nil {
			b.Fatal(err)
		}
		sessions = 0
		for j := range blocks {
			sessions += blocks[j].Sessions()
		}
		if sessions == 0 {
			b.Fatal("campaign generated no sessions")
		}
	}
	b.ReportMetric(float64(sessions), "sessions/op")
}

// skipIfSingleCPU skips benchmarks whose headline is multi-worker
// scaling: on a GOMAXPROCS=1 box they measure scheduling overhead
// only, and their numbers would pollute the benchstat trend.
func skipIfSingleCPU(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("multi-worker benchmark needs GOMAXPROCS > 1")
	}
}

// BenchmarkGenerateCampaign is the single-worker baseline of the
// parallel plane (the cost of the batched cell kernel itself).
func BenchmarkGenerateCampaign(b *testing.B) { benchmarkGenerateCampaign(b, 1) }

// BenchmarkGenerateCampaign4 runs the same campaign on 4 workers; on a
// multi-core box the acceptance bar for the plane is >= 2x wall-clock
// over the single-worker baseline (BENCH_pr8.json records both).
func BenchmarkGenerateCampaign4(b *testing.B) {
	skipIfSingleCPU(b)
	benchmarkGenerateCampaign(b, 4)
}

// benchmarkGenerateCampaignFold runs the same campaign through the
// zero-materialization fold: identical blocks, O(workers) of them live
// at once, storage recycled through the freelist. Against
// BenchmarkGenerateCampaign the pair exposes the B/op the fold gives
// back (the whole campaign's blocks) at equal-or-better wall clock.
func benchmarkGenerateCampaignFold(b *testing.B, workers int) {
	env := benchEnvironment(b)
	gen, err := core.NewGenerator(env.Models, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.CampaignSpec{Arrivals: env.Arrivals, Days: 7, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	var sessions int
	for i := 0; i < b.N; i++ {
		sessions = 0
		err := gen.GenerateCampaignFold(spec, func(blk *core.DayBlock) error {
			sessions += blk.Sessions()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if sessions == 0 {
			b.Fatal("campaign generated no sessions")
		}
	}
	b.ReportMetric(float64(sessions), "sessions/op")
}

// BenchmarkGenerateCampaignFold is the serial fold baseline: one
// recycled block for the whole campaign.
func BenchmarkGenerateCampaignFold(b *testing.B) { benchmarkGenerateCampaignFold(b, 1) }

// BenchmarkGenerateCampaignFold4 folds on 4 workers: the in-order
// visit serializes consumption, so this measures how well production
// overlaps the fold under the bounded window.
func BenchmarkGenerateCampaignFold4(b *testing.B) {
	skipIfSingleCPU(b)
	benchmarkGenerateCampaignFold(b, 4)
}

// benchGenBatch times one batch kernel against 1024-element buffers.
func benchGenBatch(b *testing.B, fill func(p *mathx.PCG, dst []float64)) {
	var rng mathx.PCG
	rng.SeedStream(1, 2, 3)
	dst := make([]float64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill(&rng, dst)
	}
	b.ReportMetric(float64(len(dst)), "draws/op")
}

// BenchmarkGenBatchUniform/Norm/Exp time the fill-N draw kernels the
// campaign cells run on (state kept register-resident across the loop).
func BenchmarkGenBatchUniform(b *testing.B) { benchGenBatch(b, (*mathx.PCG).FillFloat64) }
func BenchmarkGenBatchNorm(b *testing.B)    { benchGenBatch(b, (*mathx.PCG).FillNorm) }
func BenchmarkGenBatchExp(b *testing.B)     { benchGenBatch(b, (*mathx.PCG).FillExp) }

// BenchmarkGenBatchAliasPick times the branch-light batched alias pick
// over a 28-way categorical (the Table 1 service attribution shape).
func BenchmarkGenBatchAliasPick(b *testing.B) {
	weights := make([]float64, 28)
	rng0 := rand.New(rand.NewSource(5))
	for i := range weights {
		weights[i] = rng0.Float64() + 0.01
	}
	tab, err := mathx.NewAliasTable(weights)
	if err != nil {
		b.Fatal(err)
	}
	var rng mathx.PCG
	rng.SeedStream(4, 5, 6)
	us := make([]float64, 1024)
	rng.FillFloat64(us)
	out := make([]int32, len(us))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.PickBatch(us, out)
	}
	b.ReportMetric(float64(len(us)), "picks/op")
}

// BenchmarkAggregateVolume times the Eq. (2) nationwide per-service
// volume aggregation over a realistic campaign's cell population.
func BenchmarkAggregateVolume(b *testing.B) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Coll.AggregateVolume(probe.ForService(0)); err != nil {
			b.Fatal(err)
		}
	}
}
