package mobiletraffic

// Micro-benchmarks of the measurement-to-model hot path: the
// end-to-end campaign (NewEnv), per-session folding into the
// collector (Observe) and the Eq. (2) aggregation scan
// (AggregateVolume). BENCH_pr3.json records their trajectory.

import (
	"context"
	"testing"

	"mobiletraffic/internal/experiments"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
)

// BenchmarkNewEnv times the whole campaign-to-model pipeline at the
// default configuration (NumBS=40, Days=7): simulate, collect, merge,
// fit volumes/durations/arrivals.
func BenchmarkNewEnv(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(experiments.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(env.Models.Services) == 0 {
			b.Fatal("no services modeled")
		}
	}
}

// BenchmarkCollectorObserve times folding one session into an
// already-touched statistics cell — the per-session cost of the whole
// measurement plane, which a dense store keeps allocation-free.
func BenchmarkCollectorObserve(b *testing.B) {
	coll, err := probe.NewCollector(4)
	if err != nil {
		b.Fatal(err)
	}
	s := netsim.Session{Service: 1, BS: 2, Day: 0, Minute: 600, Volume: 3e6, Duration: 40}
	if err := coll.Observe(s); err != nil { // touch the cell once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coll.Observe(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignResume times the resume path of the fault-tolerant
// sharded runner: every shard loads from its checkpoint (codec decode +
// CRC), the partials fold in shard order, and the models refit — the
// cost of restarting an interrupted nationwide campaign, with zero
// re-simulation.
func BenchmarkCampaignResume(b *testing.B) {
	dir := b.TempDir()
	cfg := experiments.Config{NumBS: 20, Days: 3, Seed: 1}
	opts := experiments.CampaignOptions{Shards: 4, CheckpointDir: dir}
	if _, _, err := experiments.NewEnvSharded(context.Background(), cfg, opts); err != nil {
		b.Fatal(err)
	}
	opts.Resume = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, report, err := experiments.NewEnvSharded(context.Background(), cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if report.Resumed != 4 || len(env.Models.Services) == 0 {
			b.Fatalf("resume did not cover the campaign: %s", report.Summary())
		}
	}
}

// BenchmarkAggregateVolume times the Eq. (2) nationwide per-service
// volume aggregation over a realistic campaign's cell population.
func BenchmarkAggregateVolume(b *testing.B) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Coll.AggregateVolume(probe.ForService(0)); err != nil {
			b.Fatal(err)
		}
	}
}
