package mobiletraffic

// End-to-end user journey over the public API: fit models on the
// bundled measurement simulation, round-trip the released parameters
// through JSON, generate a traffic trace, round-trip the trace through
// the interchange format, and sanity-check the aggregate statistics.

import (
	"bytes"
	"math"
	"testing"

	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/trace"
)

func TestUserJourney(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// 1. Fit.
	set, err := FitFromSimulation(SimulationConfig{NumBS: 14, Days: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Release and reload the parameters.
	var params bytes.Buffer
	if err := SaveModels(set, &params); err != nil {
		t.Fatal(err)
	}
	released, err := LoadModels(&params)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Generate two hours of traffic at a busy BS class from the
	// reloaded parameters.
	gen, err := NewGenerator(released, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.CSV)
	if err != nil {
		t.Fatal(err)
	}
	for minute := 0; minute < 120; minute++ {
		sessions, err := gen.Minute(8, netsim.IsDaytime(10*60+minute))
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sessions {
			err := w.Write(trace.Record{
				TimeS:      float64(minute)*60 + float64(i),
				Service:    s.Service,
				Bytes:      s.Volume,
				DurationS:  s.Duration,
				Throughput: s.Throughput,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() < 500 {
		t.Fatalf("only %d sessions generated in two peak hours at class 9", w.Count())
	}

	// 4. The trace round-trips and its aggregate shape is sane.
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != w.Count() {
		t.Fatalf("round trip lost records: %d vs %d", len(records), w.Count())
	}
	sum := trace.Summarize(records)
	if sum.Services["Facebook"] == 0 {
		t.Error("no Facebook sessions in a 2-hour busy trace")
	}
	// Facebook is the most frequent service, per Table 1.
	for name, n := range sum.Services {
		if n > sum.Services["Facebook"] {
			t.Errorf("%s (%d) outranks Facebook (%d)", name, n, sum.Services["Facebook"])
		}
	}
	// Throughput consistency survives both round trips.
	for i, r := range records {
		if math.Abs(r.Throughput-r.Bytes/r.DurationS)/math.Max(r.Throughput, 1) > 0.05 {
			t.Fatalf("record %d throughput inconsistent: %+v", i, r)
		}
	}
}
