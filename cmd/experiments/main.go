// Command experiments regenerates every table and figure of the paper's
// evaluation from a simulated measurement campaign.
//
// Usage:
//
//	experiments [flags] [experiment...]
//
// With no arguments it runs every experiment. Known experiments:
// fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 quality table1 table2 fig12
// fig13 ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mobiletraffic/internal/experiments"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
)

func main() {
	var (
		numBS    = flag.Int("bs", 40, "number of simulated base stations")
		days     = flag.Int("days", 7, "number of simulated days (day 0 = Monday)")
		seed     = flag.Int64("seed", 1, "master random seed")
		moveProb = flag.Float64("moveprob", 0.25, "share of transient (mobility-truncated) sessions; negative disables mobility")
		sampler  = flag.String("sampler", "v2", "synthesis sampling engine: v2 (fast, table-driven) or v1 (historical byte-for-byte stream)")
		antennas = flag.Int("antennas", 10, "antennas in the slicing study (table2/fig12)")
		slDays   = flag.Int("slicing-days", 7, "days in the slicing study")
		ess      = flag.Int("ess", 16, "far edge sites in the vRAN study (fig13)")
		rus      = flag.Int("rus", 5, "radio units per edge site in the vRAN study")
		hours    = flag.Int("hours", 4, "emulated hours in the vRAN study")
		format   = flag.String("format", "table", "output format: table or csv")
		verbose  = flag.Bool("v", false, "print per-experiment timing and stage-span summaries to stderr")
		mAddr    = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /statusz, /events, /spans, /trace and /debug/pprof on this address (e.g. :9090)")
		mHold    = flag.Bool("metrics-hold", false, "after the run, keep serving -metrics-addr until interrupted")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	switch *format {
	case "table":
	case "csv":
		asCSV = true
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	// Instrumentation must be installed before the pipeline components
	// are constructed: metric handles are resolved once at construction
	// and stay no-ops if the registry appears later.
	var reg *obs.Registry
	if *verbose || *mAddr != "" || *cpuProf != "" || *memProf != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	if *mAddr != "" {
		addr, err := obs.Serve(*mAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug/pprof on %s\n", addr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		atExit(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProf != "" {
		path := *memProf
		atExit(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		})
	}
	defer runExitHooks()

	want := flag.Args()
	if len(want) == 0 {
		want = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "quality", "table1", "table2", "fig12", "fig13", "ablations",
			"applayer", "stability", "fidelity", "diurnal", "drift", "chaos",
			"killresume"}
	}

	samplerV, err := netsim.ParseSampler(*sampler)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building environment (%d BSs x %d days, seed %d, sampler %s)...\n", *numBS, *days, *seed, samplerV)
	envStart := time.Now()
	env, err := experiments.NewEnv(experiments.Config{
		NumBS: *numBS, Days: *days, Seed: *seed, MoveProb: *moveProb, Sampler: samplerV,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		line := fmt.Sprintf("environment: %s", time.Since(envStart).Round(time.Millisecond))
		if reg != nil {
			line += " [spans: " + obs.FormatSpanTotals(obs.SummarizeSpans(reg.SpanRecords())) + "]"
		}
		fmt.Fprintln(os.Stderr, line)
	}
	fmt.Fprintf(os.Stderr, "modeled %d services\n\n", len(env.Models.Services))

	slCfg := experiments.SlicingConfig{Antennas: *antennas, Days: *slDays, Seed: *seed}
	vrCfg := experiments.VRANConfig{ESs: *ess, RUsPerES: *rus, Hours: *hours, Seed: *seed}

	for _, name := range want {
		expStart := time.Now()
		spansBefore := 0
		if reg != nil {
			spansBefore = len(reg.SpanRecords())
		}
		switch strings.ToLower(name) {
		case "fig3":
			r, err := experiments.ExpFig3(env)
			render(r, err)
		case "fig4":
			r, err := experiments.ExpFig4(env)
			render(r, err)
		case "fig5":
			r, err := experiments.ExpFig5(env)
			render(r, err)
		case "fig6":
			r, err := experiments.ExpFig6(env)
			render(r, err)
		case "fig7":
			r, err := experiments.ExpFig7(env)
			render(r, err)
		case "fig8":
			r, err := experiments.ExpFig8(env)
			render(r, err)
		case "fig9":
			r, err := experiments.ExpFig9(env, "")
			render(r, err)
		case "fig10":
			r, err := experiments.ExpFig10(env)
			render(r, err)
		case "quality", "fig11":
			r, err := experiments.ExpQuality(env)
			render(r, err)
		case "table1":
			r, err := experiments.ExpTable1(env)
			render(r, err)
		case "table2":
			r, err := experiments.ExpTable2(env, slCfg)
			render(r, err)
		case "fig12":
			r, err := experiments.ExpFig12(env, slCfg)
			render(r, err)
		case "fig13":
			r, err := experiments.ExpFig13(env, vrCfg)
			if err != nil {
				fatal(err)
			}
			render13 := func(t *experiments.Table) {
				if asCSV {
					fmt.Print(t.CSV())
					fmt.Println()
					return
				}
				fmt.Println(t.Render())
			}
			render13(r.Table())
			render13(r.Fig13cTable())
		case "applayer":
			r, err := experiments.ExpAppLayer(env, 0)
			render(r, err)
		case "stability":
			r, err := experiments.ExpStability(env)
			render(r, err)
		case "fidelity":
			r, err := experiments.ExpFidelity(env, nil, 0)
			render(r, err)
		case "diurnal":
			r, err := experiments.ExpDiurnal(env)
			render(r, err)
		case "drift":
			r, err := experiments.ExpDrift(env)
			render(r, err)
		case "chaos":
			r, err := experiments.ExpChaos(env, experiments.ChaosConfig{})
			render(r, err)
		case "killresume":
			r, err := experiments.ExpKillResume(env, experiments.KillResumeConfig{})
			render(r, err)
		case "ablations":
			for _, run := range []func(*experiments.Env) (*experiments.AblationResult, error){
				experiments.ExpAblationPeakCap,
				experiments.ExpAblationSmoothing,
				experiments.ExpAblationDurationFamily,
				experiments.ExpAblationArrivalFit,
			} {
				r, err := run(env)
				render(r, err)
			}
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		if *verbose {
			line := fmt.Sprintf("%s: %s", strings.ToLower(name), time.Since(expStart).Round(time.Millisecond))
			if reg != nil {
				recs := reg.SpanRecords()
				line += " [spans: " + obs.FormatSpanTotals(obs.SummarizeSpans(recs[spansBefore:])) + "]"
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *mAddr != "" && *mHold {
		fmt.Fprintf(os.Stderr, "metrics: run finished, holding %s open (ctrl-c to exit)\n", *mAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// exitHooks are cleanups (profile flushes) that must run even when the
// process exits through fatal(), which bypasses deferred calls.
var exitHooks []func()

func atExit(f func()) { exitHooks = append(exitHooks, f) }

func runExitHooks() {
	for i := len(exitHooks) - 1; i >= 0; i-- {
		exitHooks[i]()
	}
	exitHooks = nil
}

// tabler is any experiment result that renders as a Table.
type tabler interface{ Table() *experiments.Table }

// asCSV is set from the -format flag before experiments run.
var asCSV bool

func render(r tabler, err error) {
	if err != nil {
		fatal(err)
	}
	if asCSV {
		fmt.Print(r.Table().CSV())
		fmt.Println()
		return
	}
	fmt.Println(r.Table().Render())
}

func fatal(err error) {
	runExitHooks()
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
