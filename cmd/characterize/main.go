// Command characterize runs the measurement pipeline of paper §3-§4 on
// a simulated campaign and emits plot-ready CSV series: per-service
// traffic volume PDFs over log10(bytes), duration-volume pairs, and the
// per-minute arrival count histograms per BS load decile.
//
// Output sections are separated by lines starting with '#'.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mobiletraffic/internal/campaign"
	"mobiletraffic/internal/experiments"
	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/probe"
)

func main() {
	var (
		numBS    = flag.Int("bs", 40, "number of simulated base stations")
		days     = flag.Int("days", 7, "number of simulated days")
		seed     = flag.Int64("seed", 1, "master random seed")
		services = flag.String("services", "Netflix,Twitch,Deezer,Amazon,Pokemon GO,Waze",
			"comma-separated services to characterize")
		deciles = flag.String("deciles", "0,3,6,9", "comma-separated BS load deciles for arrival PDFs")
		sampler = flag.String("sampler", "v2", "synthesis sampling engine: v2 (fast, table-driven) or v1 (historical byte-for-byte stream)")
		mAddr   = flag.String("metrics-addr", "", "serve /metrics, /statusz, /events, /spans and /debug/pprof on this address (e.g. :9090)")

		// Fault-tolerant sharded campaign (internal/campaign). Any of
		// -shards/-checkpoint-dir/-resume selects the supervised path.
		shards  = flag.Int("shards", 0, "split the campaign into this many supervised BS-range shards (0 = in-process collection; -checkpoint-dir or -resume implies one shard per CPU)")
		workers = flag.Int("workers", 0, "bound concurrent shard attempts (0 = one per CPU)")
		ckptDir = flag.String("checkpoint-dir", "", "write crash-safe per-shard checkpoints and a campaign manifest into this directory")
		resume  = flag.Bool("resume", false, "load completed shard checkpoints from -checkpoint-dir instead of recomputing them")
		shardTO = flag.Duration("shard-timeout", 0, "abort and retry a shard attempt running longer than this (0 = no timeout)")
		retries = flag.Int("max-retries", 2, "per-shard retry budget after the first attempt; an exhausted shard degrades the campaign instead of failing it")
		stallTO = flag.Duration("stall-after", 0, "flag a shard as stalled (flight-recorder event + campaign_shards_stalled_total) when its heartbeat goes quiet this long (0 = off)")
		mdlOut  = flag.String("model-out", "", "write the fitted ModelSet JSON to this file")

		// Chaos knobs: process-level fault injection into shard workers,
		// for supervisor testing and the CI kill/resume job.
		faultSlow  = flag.Duration("fault-slow-shard", 0, "chaos: add this latency to every shard attempt (slow-worker fault; stretches the campaign so an external SIGKILL lands mid-run)")
		faultCrash = flag.Int("fault-crash-shard", -1, "chaos: panic the first attempt of this shard index (exercises supervised retry)")
	)
	flag.Parse()

	// The registry must be installed before NewEnv builds the pipeline:
	// components cache their metric handles at construction.
	if *mAddr != "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		addr, err := obs.Serve(*mAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics, /statusz and /debug/pprof on %s\n", addr)
	}

	samplerV, err := netsim.ParseSampler(*sampler)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{NumBS: *numBS, Days: *days, Seed: *seed, Sampler: samplerV}
	sharded := *shards > 0 || *ckptDir != "" || *resume
	var env *experiments.Env
	if sharded {
		// SIGINT/SIGTERM no longer kill the campaign outright: the
		// context cancels, in-flight shards stop, and the supervisor
		// writes the final manifest so completed shards' checkpoints
		// are picked up by a -resume run.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		opts := experiments.CampaignOptions{
			Shards:        *shards,
			Workers:       *workers,
			CheckpointDir: *ckptDir,
			Resume:        *resume,
			ShardTimeout:  *shardTO,
			MaxRetries:    *retries,
			StallAfter:    *stallTO,
		}
		if *faultSlow > 0 || *faultCrash >= 0 {
			pc := faults.ProcessConfig{SlowShardDelay: *faultSlow}
			if *faultCrash >= 0 {
				pc.CrashShard = *faultCrash
				pc.CrashAttempts = 1
			}
			proc, err := faults.NewProcess(pc)
			if err != nil {
				fatal(err)
			}
			opts.Process = proc
		}
		fmt.Fprintf(os.Stderr, "building environment (%d BSs x %d days, sharded campaign)...\n", *numBS, *days)
		var report *campaign.Report
		env, report, err = experiments.NewEnvSharded(ctx, cfg, opts)
		if report != nil {
			fmt.Fprintln(os.Stderr, report.Summary())
		}
		if err != nil {
			if errors.Is(err, campaign.ErrInterrupted) {
				fmt.Fprintf(os.Stderr, "characterize: interrupted; completed shards are checkpointed under %s — re-run with -resume to continue\n", *ckptDir)
				os.Exit(130)
			}
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "building environment (%d BSs x %d days)...\n", *numBS, *days)
		env, err = experiments.NewEnv(cfg)
		if err != nil {
			fatal(err)
		}
	}

	if *mdlOut != "" {
		data, err := env.Models.ToJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*mdlOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote model set (%d services) to %s\n", len(env.Models.Services), *mdlOut)
	}

	// Per-service volume PDFs and duration-volume pairs.
	for _, name := range strings.Split(*services, ",") {
		name = strings.TrimSpace(name)
		svc := -1
		for i, p := range env.Catalog {
			if p.Name == name {
				svc = i
				break
			}
		}
		if svc < 0 {
			fatal(fmt.Errorf("unknown service %q", name))
		}
		h, weight, err := env.AggregateVolume(svc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# volume_pdf service=%q sessions=%.0f (columns: log10_bytes,probability)\n", name, weight)
		centers := h.Centers()
		for i, c := range centers {
			if h.P[i] > 0 {
				fmt.Printf("%.3f,%.6g\n", c, h.P[i])
			}
		}
		values, counts, err := env.AggregatePairs(svc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# duration_volume_pairs service=%q (columns: duration_s,mean_bytes,sessions)\n", name)
		durations := env.Coll.DurationCenters()
		for i := range values {
			if !math.IsNaN(values[i]) && counts[i] > 0 {
				fmt.Printf("%.2f,%.6g,%.0f\n", durations[i], values[i], counts[i])
			}
		}
	}

	// Arrival count histograms per requested decile.
	for _, d := range strings.Split(*deciles, ",") {
		var decile int
		if _, err := fmt.Sscanf(strings.TrimSpace(d), "%d", &decile); err != nil || decile < 0 || decile > 9 {
			fatal(fmt.Errorf("bad decile %q", d))
		}
		filter := probe.BSIn(env.Topo.ByDecile(decile))
		peak := env.Coll.MinuteCountSamples(filter, netsim.IsPeakMinute)
		off := env.Coll.MinuteCountSamples(filter, netsim.IsOffPeakMinute)
		m := env.Arrivals[decile]
		fmt.Printf("# arrivals decile=%d peak_mu=%.3f peak_sigma=%.3f pareto_scale=%.3f pareto_shape=%.3f (columns: phase,sessions_per_minute,count)\n",
			decile+1, m.PeakMu, m.PeakSigma, m.OffScale, m.OffShape)
		emitCounts := func(phase string, samples []float64) {
			hist := map[int]int{}
			for _, s := range samples {
				hist[int(s)]++
			}
			max := 0
			for k := range hist {
				if k > max {
					max = k
				}
			}
			for k := 0; k <= max; k++ {
				if hist[k] > 0 {
					fmt.Printf("%s,%d,%d\n", phase, k, hist[k])
				}
			}
		}
		emitCounts("peak", peak)
		emitCounts("offpeak", off)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
