// Command modelinfo prints a human-readable model card for a released
// session-level parameter file (the JSON produced by
// `sessiongen -dump-models`), validates it, and optionally compares it
// against a second parameter file to quantify model drift.
//
// Usage:
//
//	modelinfo params.json
//	modelinfo -compare old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mobiletraffic"
	"mobiletraffic/internal/core"
)

func main() {
	compare := flag.Bool("compare", false, "compare two parameter files (old new)")
	flag.Parse()

	args := flag.Args()
	if *compare {
		if len(args) != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files, got %d", len(args)))
		}
		old, err := load(args[0])
		if err != nil {
			fatal(err)
		}
		neu, err := load(args[1])
		if err != nil {
			fatal(err)
		}
		cmp, err := core.CompareModelSets(old, neu)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model drift %s -> %s\n", args[0], args[1])
		fmt.Printf("common services: %d, only in old: %v, only in new: %v\n",
			len(cmp.Deltas), cmp.OnlyInA, cmp.OnlyInB)
		fmt.Printf("median |d mu| %.4g decades, median |d beta| %.4g\n\n", cmp.MedianDeltaMu, cmp.MedianDeltaBeta)
		fmt.Printf("%-18s %8s %8s %10s %9s\n", "service", "|d mu|", "|d beta|", "alpha x", "|d share|")
		for _, d := range cmp.Deltas {
			fmt.Printf("%-18s %8.3f %8.3f %10.2f %9.4f\n",
				d.Name, d.DeltaMu, d.DeltaBeta, d.AlphaRatio, d.ShareDelta)
		}
		return
	}

	if len(args) != 1 {
		fatal(fmt.Errorf("need exactly one parameter file, got %d", len(args)))
	}
	set, err := load(args[0])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model card: %s\n", args[0])
	fmt.Printf("services: %d, arrival classes: %d\n\n", len(set.Services), len(set.Arrivals))
	if len(set.Arrivals) > 0 {
		fmt.Println("arrival model per BS load class (sessions/minute):")
		for i, a := range set.Arrivals {
			fmt.Printf("  class %2d: day N(%.2f, %.2f), night Pareto(b=%.3f, s=%.2f)\n",
				i+1, a.PeakMu, a.PeakSigma, a.OffShape, a.OffScale)
		}
		fmt.Println()
	}
	models := append([]mobiletraffic.ServiceModel(nil), set.Services...)
	sort.SliceStable(models, func(i, j int) bool { return models[i].SessionShare > models[j].SessionShare })
	fmt.Printf("%-18s %7s %16s %5s %9s %6s %8s %9s\n",
		"service", "share", "volume mu/sigma", "peaks", "alpha", "beta", "dur R2", "vol EMD")
	for _, m := range models {
		fmt.Printf("%-18s %6.2f%% %8.2f / %5.2f %5d %9.3g %6.2f %8.2f %9.2g\n",
			m.Name, m.SessionShare*100, m.Volume.MainMu, m.Volume.MainSigma,
			len(m.Volume.Peaks), m.Duration.Alpha, m.Duration.Beta, m.Duration.R2, m.VolumeEMD)
	}
	for _, m := range models {
		if len(m.Volume.Peaks) > 3 {
			fmt.Fprintf(os.Stderr, "warning: %s exceeds the 3-peak cap\n", m.Name)
		}
	}
	fmt.Println("\nall parameter tuples pass validation")
}

// load reads and validates a parameter file. A file carrying NaN/Inf
// parameters, non-positive sigmas or alphas, or out-of-range session
// shares is rejected with a clear error instead of being printed — a
// model card must never launder a corrupt release.
func load(path string) (*mobiletraffic.ModelSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := mobiletraffic.LoadModels(f)
	if err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("%s: invalid parameter file:\n%w", path, err)
	}
	return set, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelinfo:", err)
	os.Exit(1)
}
