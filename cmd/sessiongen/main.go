// Command sessiongen generates synthetic session-level mobile traffic
// traces from the paper's models (§5.4).
//
// It either fits a fresh model set on the bundled measurement
// simulation (default) or loads released parameters from a JSON file
// (-models). The generated trace lists one session per line with its
// establishment time, service, volume, duration and mean throughput.
//
// Examples:
//
//	sessiongen -minutes 60 -class 9 > trace.csv
//	sessiongen -dump-models > params.json
//	sessiongen -models params.json -minutes 1440 -format json > day.json
//	sessiongen -minutes 1440 -format bin > day.mttr
//	sessiongen -minutes 1440 -metrics-addr :9090 > day.csv   # watch /statusz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobiletraffic"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/obs"
	"mobiletraffic/internal/trace"
)

func main() {
	var (
		modelsPath = flag.String("models", "", "load released model parameters from this JSON file (default: fit on the bundled simulation)")
		dumpModels = flag.Bool("dump-models", false, "print the model parameter JSON instead of a trace")
		minutes    = flag.Int("minutes", 60, "minutes of traffic to generate")
		startMin   = flag.Int("start", 8*60, "starting minute of day (determines day/night arrival mode)")
		class      = flag.Int("class", 9, "BS load class (decile index 0-9)")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "csv", "output format: csv, json or bin (MTTR columnar binary with embedded summary)")
		fitBS      = flag.Int("fit-bs", 20, "base stations in the fitting simulation")
		fitDays    = flag.Int("fit-days", 3, "days in the fitting simulation")
		sampler    = flag.String("sampler", "v2", "fitting-simulation sampling engine: v2 (fast, table-driven) or v1 (historical byte-for-byte stream)")
		genEngine  = flag.String("gen", "v2", "generation engine: v2 (fast, table-driven) or v1 (historical byte-for-byte stream)")
		workers    = flag.Int("workers", 0, "generate per-day cells on the parallel campaign plane with this many workers (-1 = all CPUs; 0 = the historical serial single-stream path; v2 only)")
		mAddr      = flag.String("metrics-addr", "", "serve /metrics, /statusz, /events and /debug/pprof on this address (e.g. :9090)")
	)
	flag.Parse()

	// The registry must be installed before the models are fitted or
	// the generator built: components cache their metric handles at
	// construction.
	if *mAddr != "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		addr, err := obs.Serve(*mAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics, /statusz and /debug/pprof on %s\n", addr)
	}

	var set *mobiletraffic.ModelSet
	if *modelsPath != "" {
		f, err := os.Open(*modelsPath)
		if err != nil {
			fatal(err)
		}
		set, err = mobiletraffic.LoadModels(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "fitting models on the bundled measurement simulation...")
		var err error
		set, err = mobiletraffic.FitFromSimulation(mobiletraffic.SimulationConfig{
			NumBS: *fitBS, Days: *fitDays, Seed: *seed, Sampler: *sampler,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *dumpModels {
		if err := mobiletraffic.SaveModels(set, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	engine, err := mobiletraffic.ParseGenEngine(*genEngine)
	if err != nil {
		fatal(err)
	}
	gen, err := mobiletraffic.NewGeneratorEngine(set, *seed, engine)
	if err != nil {
		fatal(err)
	}
	if *class < 0 || *class >= len(set.Arrivals) {
		fatal(fmt.Errorf("class %d out of range [0, %d)", *class, len(set.Arrivals)))
	}

	tf, err := trace.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	w, err := trace.NewWriter(os.Stdout, tf)
	if err != nil {
		fatal(err)
	}
	// Each generated minute is one unit on /statusz: a long generation
	// run reports completion fraction and ETA like a campaign does.
	progress := obs.NewProgress("sessiongen_minutes", *minutes)
	obs.TrackProgressOf(progress)
	start := time.Now()
	if *workers != 0 {
		// Parallel campaign plane: whole days generated concurrently
		// from per-(class, day) substreams, emitted in order and
		// truncated to the requested minutes. Output depends only on
		// (seed, class, minutes), never on the worker count. Session
		// start times come from the sampled within-minute offsets, and
		// the day/night mode is drawn against the diurnal phase profile
		// (the transition-aware choice of the experiment drivers) rather
		// than the serial path's hard day/night switch. The fold hands
		// each day block to the writer as it completes and recycles its
		// backing arrays for a later day, so an arbitrarily long run
		// keeps O(workers) days in memory and allocates nothing per day
		// in steady state (TestGenerateCampaignFoldSteadyStateAllocs).
		pw := *workers
		if pw < 0 {
			pw = 0 // CampaignSpec: <= 0 means all CPUs
		}
		days := (*minutes + 24*60 - 1) / (24 * 60)
		err := gen.GenerateCampaignFold(mobiletraffic.CampaignSpec{
			Arrivals:    []*mobiletraffic.ArrivalModel{set.Arrivals[*class]},
			Keys:        []uint64{uint64(*class)},
			Days:        days,
			StartMinute: *startMin,
			Workers:     pw,
		}, func(blk *mobiletraffic.DayBlock) error {
			for m := 0; m < 24*60; m++ {
				gm := blk.Day*24*60 + m
				if gm >= *minutes {
					break
				}
				progress.Start(gm)
				lo, hi := blk.MinuteRange(m)
				for i := lo; i < hi; i++ {
					err := w.Write(trace.Record{
						TimeS:      float64(blk.Day)*86400 + blk.Start[i],
						Service:    set.Services[blk.Svc[i]].Name,
						Bytes:      blk.Volume[i],
						DurationS:  blk.Duration[i],
						Throughput: blk.Volume[i] / blk.Duration[i],
					})
					if err != nil {
						return err
					}
				}
				progress.Done(gm)
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
	} else {
		sessionsCtr := obs.CounterOf("gen_sessions_total")
		minutesCtr := obs.CounterOf("gen_minutes_total")
		for m := 0; m < *minutes; m++ {
			progress.Start(m)
			minuteOfDay := (*startMin + m) % (24 * 60)
			peak := netsim.IsDaytime(minuteOfDay)
			sessions, err := gen.Minute(*class, peak)
			if err != nil {
				fatal(err)
			}
			for i, s := range sessions {
				err := w.Write(trace.Record{
					TimeS:      float64(m)*60 + float64(i)*60/float64(len(sessions)+1),
					Service:    s.Service,
					Bytes:      s.Volume,
					DurationS:  s.Duration,
					Throughput: s.Throughput,
				})
				if err != nil {
					fatal(err)
				}
			}
			sessionsCtr.Add(int64(len(sessions)))
			minutesCtr.Inc()
			progress.Done(m)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	rate := float64(w.Count()) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "generated %d sessions over %d minutes (class %d) in %v (%.0f sessions/s)\n",
		w.Count(), *minutes, *class, elapsed.Round(time.Millisecond), rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sessiongen:", err)
	os.Exit(1)
}
