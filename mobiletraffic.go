// Package mobiletraffic is a library for characterizing and generating
// session-level mobile traffic demands, reproducing "Characterizing and
// Modeling Session-Level Mobile Traffic Demands from Large-Scale
// Measurements" (Zanella, Bazco-Nogueras, Ziemlicki, Fiore — ACM IMC
// 2023).
//
// The library models mobile traffic at the level of individual
// transport-layer (TCP/UDP) sessions served by one base station:
//
//   - the per-minute session arrival process at a BS is bi-modal — a
//     daytime Gaussian (sigma ~ mu/10) and a nighttime Pareto (shape
//     1.765) — with a constant measurement-driven per-service breakdown
//     (paper §5.1);
//   - the per-session traffic volume PDF of each service is a base-10
//     log-normal mixture: one main trend plus at most three
//     characteristic peaks found by residual analysis (paper §5.2);
//   - the session duration relates to its volume through a power law
//     v_s(d) = alpha_s * d^beta_s, super-linear for streaming services
//     and sub-linear for interactive ones (paper §5.3).
//
// Fitted models are serializable parameter tuples
// [mu_s, sigma_s, {k_n, mu_n, sigma_n}, alpha_s, beta_s] (paper §5.4)
// and drive a Generator producing synthetic per-minute session
// workloads with realistic volume, duration and throughput — suitable
// for network planning, slicing and vRAN orchestration studies (paper
// §6).
//
// The paper's measurement dataset is proprietary; this repository
// bundles a measurement-campaign simulator (see FitFromSimulation and
// DESIGN.md) whose per-service ground truth is seeded from the paper's
// published statistics, so the full pipeline runs end-to-end and every
// fitted model can be validated against known ground truth.
package mobiletraffic

import (
	"fmt"
	"io"

	"mobiletraffic/internal/core"
	"mobiletraffic/internal/faults"
	"mobiletraffic/internal/netsim"
	"mobiletraffic/internal/probe"
	"mobiletraffic/internal/services"
)

// Re-exported model types: the paper's released artifacts.
type (
	// ModelSet is the released collection of per-service session models
	// plus per-BS-class arrival models.
	ModelSet = core.ModelSet
	// ServiceModel is one service's complete parameter tuple.
	ServiceModel = core.ServiceModel
	// VolumeModel is the log-normal mixture of the per-session traffic
	// volume PDF (§5.2).
	VolumeModel = core.VolumeModel
	// VolumeComponent is one residual mixture component.
	VolumeComponent = core.VolumeComponent
	// DurationModel is the duration-volume power law (§5.3).
	DurationModel = core.DurationModel
	// ArrivalModel is the bi-modal per-minute arrival model (§5.1).
	ArrivalModel = core.ArrivalModel
	// Generator draws synthetic per-minute session workloads from a
	// ModelSet (§5.4).
	Generator = core.Generator
	// GenSession is one generated session: volume, duration and mean
	// throughput.
	GenSession = core.GenSession
	// GenEngine selects the generation-engine stream version: GenV1
	// replays the historical math/rand stream byte for byte, GenV2 is
	// the fast table-driven default.
	GenEngine = core.Engine
	// CampaignSpec describes a parallel generation campaign: a grid of
	// (BS, day) cells, each drawing from its own keyed substream, so
	// Generator.GenerateCampaign output is bit-identical for every
	// worker count (GenV2 only).
	CampaignSpec = core.CampaignSpec
	// DayBlock is one (BS, day) cell of campaign output in columnar
	// layout with a CSR per-minute index.
	DayBlock = core.DayBlock
	// ServiceProfile is a ground-truth service description used by the
	// bundled measurement simulator.
	ServiceProfile = services.Profile
	// FitReport accounts for every service a graceful-degradation fit
	// skipped or modeled with a fallback.
	FitReport = core.FitReport
	// FitIssue is one skipped or degraded service in a FitReport.
	FitIssue = core.FitIssue
	// FaultConfig sets measurement-plane fault intensities for
	// FitFromSimulationFaulty (probe outages, truncated days, record
	// loss/duplication, signaling gaps, misclassification bursts).
	FaultConfig = faults.Config
)

// Generation engine versions accepted by NewGeneratorEngine.
const (
	GenV1 = core.GenV1
	GenV2 = core.GenV2
)

// NewGenerator validates a model set and returns a deterministic
// session generator on the default engine (GenV2).
func NewGenerator(set *ModelSet, seed int64) (*Generator, error) {
	return core.NewGenerator(set, seed)
}

// NewGeneratorEngine is NewGenerator with an explicit generation
// engine: GenV1 for the historical byte-for-byte stream, GenV2 for the
// fast table-driven default.
func NewGeneratorEngine(set *ModelSet, seed int64, engine GenEngine) (*Generator, error) {
	return core.NewGeneratorEngine(set, seed, engine)
}

// ParseGenEngine validates a generation-engine version string ("" and
// "v2" select the default, "v1" the historical stream).
func ParseGenEngine(s string) (GenEngine, error) { return core.ParseEngine(s) }

// ParseModels reads a released parameter file (JSON).
func ParseModels(data []byte) (*ModelSet, error) { return core.ModelSetFromJSON(data) }

// LoadModels reads a released parameter file from r.
func LoadModels(r io.Reader) (*ModelSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("mobiletraffic: read models: %w", err)
	}
	return ParseModels(data)
}

// SaveModels writes the model set as indented JSON to w.
func SaveModels(set *ModelSet, w io.Writer) error {
	data, err := set.ToJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Services returns the bundled 31-service catalog (paper Table 1 plus
// three extra modeled services), ordered by descending session share.
func Services() []ServiceProfile { return services.All() }

// SimulationConfig sizes the bundled measurement-campaign simulation
// used when no real session data is available. Zero values take
// defaults: 40 BSs, 7 days, 25% transient sessions.
type SimulationConfig struct {
	NumBS int
	Days  int
	Seed  int64
	// MoveProb is the share of transient (mobility-truncated) sessions;
	// negative disables mobility.
	MoveProb float64
	// Sampler selects the synthesis-engine stream version: "" or "v2"
	// for the fast table-driven default, "v1" for the historical
	// byte-for-byte session stream (see netsim.Sampler).
	Sampler string
}

// FitFromSimulation runs the bundled measurement simulation (a
// scaled-down stand-in for the paper's 282k-BS campaign) and fits the
// complete §5 model set on it: per-service volume mixtures and power
// laws plus per-decile arrival models.
func FitFromSimulation(cfg SimulationConfig) (*ModelSet, error) {
	set, _, err := FitFromSimulationFaulty(cfg, FaultConfig{})
	return set, err
}

// FitFromSimulationFaulty is FitFromSimulation with measurement-plane
// faults injected between the simulated sessions and the probe
// collector: BS-day outages, truncated days, gateway record loss and
// duplication, signaling gaps and classifier misclassification bursts,
// all seeded by f.Seed. The models are then fitted with the
// graceful-degradation pipeline, so a partial ModelSet plus a FitReport
// listing every skipped or fallback-fitted service is returned even
// when faults starve part of the catalog. A zero FaultConfig collects a
// pristine campaign.
func FitFromSimulationFaulty(cfg SimulationConfig, f FaultConfig) (*ModelSet, *FitReport, error) {
	if cfg.NumBS <= 0 {
		cfg.NumBS = 40
	}
	if cfg.Days <= 0 {
		cfg.Days = 7
	}
	topo, err := netsim.NewTopology(netsim.TopologyConfig{NumBS: cfg.NumBS, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	sampler, err := netsim.ParseSampler(cfg.Sampler)
	if err != nil {
		return nil, nil, err
	}
	sim, err := netsim.NewSimulator(topo, netsim.SimConfig{
		Days: cfg.Days, Seed: cfg.Seed, MoveProb: cfg.MoveProb, Sampler: sampler,
	})
	if err != nil {
		return nil, nil, err
	}
	inj, err := faults.New(f, len(sim.Services))
	if err != nil {
		return nil, nil, err
	}
	coll, err := probe.NewCollector(len(sim.Services))
	if err != nil {
		return nil, nil, err
	}
	var obsErr error
	yield := inj.Wrap(func(s netsim.Session) {
		if obsErr == nil {
			obsErr = coll.Observe(s)
		}
	})
	if err := sim.GenerateAll(yield); err != nil {
		return nil, nil, err
	}
	if obsErr != nil {
		return nil, nil, obsErr
	}
	set, report, err := core.FitServiceModelsReport(coll, sim.Services, nil)
	if err != nil {
		return nil, nil, err
	}
	arrivals, arrReport, err := core.FitArrivalsByDecileReport(coll, topo)
	if err != nil {
		return nil, nil, err
	}
	set.Arrivals = arrivals
	report.Merge(arrReport)
	return set, report, nil
}

// SessionObservation is one measured transport-layer session, the input
// unit for fitting models on user-provided data.
type SessionObservation struct {
	Service  string  // service name (free-form, defines the model name)
	BS       int     // serving base station identifier
	Day      int     // observation day (0-based; day 0 = Monday)
	Minute   int     // minute of day of establishment, [0, 1440)
	Volume   float64 // session traffic in bytes
	Duration float64 // session duration in seconds
}

// FitFromObservations aggregates user-provided sessions into the
// paper's per-(service, BS, day) statistics (§3.2) and fits the §5
// models. At least a few hundred sessions per service are needed for a
// stable fit; services below minSessions (default 100 when <= 0) are
// skipped.
func FitFromObservations(obs []SessionObservation, minSessions float64) (*ModelSet, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("mobiletraffic: no observations")
	}
	// Assign service indices in first-seen order.
	idx := map[string]int{}
	var names []string
	for _, o := range obs {
		if _, ok := idx[o.Service]; !ok {
			idx[o.Service] = len(names)
			names = append(names, o.Service)
		}
	}
	coll, err := probe.NewCollector(len(names))
	if err != nil {
		return nil, err
	}
	for i, o := range obs {
		if o.Minute < 0 || o.Minute >= netsim.MinutesPerDay {
			return nil, fmt.Errorf("mobiletraffic: observation %d: minute %d out of range", i, o.Minute)
		}
		if o.Volume <= 0 || o.Duration <= 0 {
			return nil, fmt.Errorf("mobiletraffic: observation %d: volume and duration must be positive", i)
		}
		err := coll.Observe(netsim.Session{
			Service:  idx[o.Service],
			BS:       o.BS,
			Day:      o.Day,
			Minute:   o.Minute,
			Volume:   o.Volume,
			Duration: o.Duration,
		})
		if err != nil {
			return nil, err
		}
	}
	catalog := make([]services.Profile, len(names))
	for name, i := range idx {
		catalog[i] = services.Profile{Name: name}
	}
	opts := &core.FitOptions{MinSessions: minSessions}
	if minSessions <= 0 {
		opts = nil
	}
	return core.FitServiceModels(coll, catalog, opts)
}
